/**
 * @file
 * GF(2^8) tables and the Cauchy-matrix Reed-Solomon codec.
 */

#include "checksum/gf256.hh"

#include <cstring>

#include "checksum/checksum.hh"
#include "kernels/kernels.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace tvarak {

namespace gf256 {
namespace {

constexpr unsigned kPoly = 0x11D;  //!< x^8 + x^4 + x^3 + x^2 + 1

/** Log/antilog tables for alpha = 2. alog is doubled so that
 *  mul can skip the mod-255 reduction of the exponent sum. */
struct Tables {
    std::uint8_t logt[256];
    std::uint8_t alog[510];

    Tables()
    {
        unsigned v = 1;
        for (unsigned e = 0; e < 255; e++) {
            alog[e] = static_cast<std::uint8_t>(v);
            alog[e + 255] = static_cast<std::uint8_t>(v);
            logt[v] = static_cast<std::uint8_t>(e);
            v <<= 1;
            if (v & 0x100)
                v ^= kPoly;
        }
        logt[0] = 0;  // never consulted: mul/inv special-case 0
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

}  // namespace

std::uint8_t
mul(std::uint8_t a, std::uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    const Tables &t = tables();
    return t.alog[t.logt[a] + t.logt[b]];
}

std::uint8_t
inv(std::uint8_t a)
{
    panic_if(a == 0, "gf256: inverse of 0");
    const Tables &t = tables();
    return t.alog[255 - t.logt[a]];
}

void
mulLineInto(void *dst, const void *src, std::uint8_t c)
{
    // The byte loop lives in the kernel layer (scalar log/alog walk,
    // or pshufb nibble tables on the SIMD backends).
    kernels::ops().gfMulAcc(dst, src, c, kLineBytes);
}

}  // namespace gf256

std::atomic<std::uint64_t> RsCode::constructions_{0};

RsCode::RsCode(std::size_t n, std::size_t k)
    : n_(n), k_(k), coeff_(k * n)
{
    panic_if(n < 2 || k < 1 || n + k > 255,
             "RsCode: bad geometry %zu+%zu", n, k);
    constructions_.fetch_add(1, std::memory_order_relaxed);

    // Cauchy block C[j][i] = 1 / (x_j + y_i), x_j = n + j, y_i = i.
    // x and y are disjoint (i < n <= x_j), so x_j + y_i != 0 in
    // GF(2^8) and every entry is well defined.
    for (std::size_t j = 0; j < k_; j++) {
        for (std::size_t i = 0; i < n_; i++) {
            coeff_[j * n_ + i] = gf256::inv(
                static_cast<std::uint8_t>((n_ + j) ^ i));
        }
    }
    // Column-normalize so parity row 0 is all ones (XOR parity).
    // Diagonal scalings keep every square submatrix nonsingular, so
    // the MDS property survives the normalization.
    for (std::size_t i = 0; i < n_; i++) {
        std::uint8_t ci = gf256::inv(coeff_[i]);
        for (std::size_t j = 0; j < k_; j++)
            coeff_[j * n_ + i] = gf256::mul(coeff_[j * n_ + i], ci);
    }
}

void
RsCode::encode(std::uint8_t *const members[]) const
{
    for (std::size_t j = 0; j < k_; j++) {
        std::uint8_t *parity = members[n_ + j];
        std::memset(parity, 0, kLineBytes);
        for (std::size_t i = 0; i < n_; i++)
            updateParity(parity, members[i], j, i);
    }
}

bool
RsCode::decode(std::uint8_t *const members[],
               const bool present[]) const
{
    const std::size_t total = n_ + k_;
    std::size_t missing = 0;
    for (std::size_t m = 0; m < total; m++)
        missing += present[m] ? 0 : 1;
    if (missing == 0)
        return true;
    if (missing > k_)
        return false;

    // Solve for the data vector from n surviving generator rows.
    // Generator G is (n+k) x n: rows 0..n-1 identity, rows n..n+k-1
    // the Cauchy parity block. Pick the first n surviving members,
    // Gauss-Jordan invert their rows as the square system
    // [rows | survivor values] -> [I | data].
    std::size_t rows[255];
    std::size_t nrows = 0;
    for (std::size_t m = 0; m < total && nrows < n_; m++) {
        if (present[m])
            rows[nrows++] = m;
    }
    panic_if(nrows < n_, "RsCode: survivor count inconsistent");

    // a: n x n coefficient matrix; rhs: the surviving line per row.
    std::vector<std::uint8_t> a(n_ * n_, 0);
    std::vector<std::uint8_t> rhs(n_ * kLineBytes);
    for (std::size_t r = 0; r < n_; r++) {
        std::size_t m = rows[r];
        if (m < n_) {
            a[r * n_ + m] = 1;
        } else {
            std::memcpy(&a[r * n_],
                        &coeff_[(m - n_) * n_], n_);
        }
        std::memcpy(&rhs[r * kLineBytes], members[m], kLineBytes);
    }

    // Gauss-Jordan elimination over GF(2^8); the matrix is
    // nonsingular by the MDS property, so a pivot always exists.
    for (std::size_t col = 0; col < n_; col++) {
        std::size_t piv = col;
        while (piv < n_ && a[piv * n_ + col] == 0)
            piv++;
        panic_if(piv == n_, "RsCode: singular survivor matrix");
        if (piv != col) {
            for (std::size_t c = 0; c < n_; c++)
                std::swap(a[piv * n_ + c], a[col * n_ + c]);
            for (std::size_t b = 0; b < kLineBytes; b++)
                std::swap(rhs[piv * kLineBytes + b],
                          rhs[col * kLineBytes + b]);
        }
        std::uint8_t pinv = gf256::inv(a[col * n_ + col]);
        for (std::size_t c = 0; c < n_; c++)
            a[col * n_ + c] = gf256::mul(a[col * n_ + c], pinv);
        for (std::size_t b = 0; b < kLineBytes; b++) {
            std::uint8_t &v = rhs[col * kLineBytes + b];
            v = gf256::mul(v, pinv);
        }
        for (std::size_t r = 0; r < n_; r++) {
            if (r == col)
                continue;
            std::uint8_t f = a[r * n_ + col];
            if (f == 0)
                continue;
            for (std::size_t c = 0; c < n_; c++)
                a[r * n_ + c] = static_cast<std::uint8_t>(
                    a[r * n_ + c] ^ gf256::mul(f, a[col * n_ + c]));
            gf256::mulLineInto(&rhs[r * kLineBytes],
                               &rhs[col * kLineBytes], f);
        }
    }

    // rhs now holds the data members; restore missing data...
    for (std::size_t i = 0; i < n_; i++) {
        if (!present[i])
            std::memcpy(members[i], &rhs[i * kLineBytes], kLineBytes);
    }
    // ...and recompute missing parity from the full data vector.
    for (std::size_t j = 0; j < k_; j++) {
        if (present[n_ + j])
            continue;
        std::uint8_t *parity = members[n_ + j];
        std::memset(parity, 0, kLineBytes);
        for (std::size_t i = 0; i < n_; i++) {
            gf256::mulLineInto(parity,
                               present[i] ? members[i]
                                          : &rhs[i * kLineBytes],
                               coeff(j, i));
        }
    }
    return true;
}

}  // namespace tvarak
