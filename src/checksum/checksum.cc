#include "checksum/checksum.hh"

#include <array>
#include <cstring>

#if defined(__x86_64__)
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace tvarak {

namespace {

/** CRC-32C (Castagnoli) slicing tables, built once at startup. */
struct Crc32cTables {
    std::array<std::array<std::uint32_t, 256>, 8> t;

    Crc32cTables()
    {
        constexpr std::uint32_t poly = 0x82f63b78u;  // reflected 0x1EDC6F41
        for (std::uint32_t i = 0; i < 256; i++) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; k++)
                c = (c & 1) ? (poly ^ (c >> 1)) : (c >> 1);
            t[0][i] = c;
        }
        for (std::uint32_t i = 0; i < 256; i++) {
            std::uint32_t c = t[0][i];
            for (std::size_t s = 1; s < 8; s++) {
                c = t[0][c & 0xff] ^ (c >> 8);
                t[s][i] = c;
            }
        }
    }
};

const Crc32cTables tables;

}  // namespace

namespace {

#if defined(__x86_64__)
/** One-time SSE4.2 detection for the hardware crc32 path. */
bool
haveSse42()
{
    static const bool have = [] {
        unsigned eax, ebx, ecx = 0, edx;
        if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
            return false;
        return (ecx & bit_SSE4_2) != 0;
    }();
    return have;
}

__attribute__((target("sse4.2"))) std::uint32_t
crc32cHw(const std::uint8_t *p, std::size_t len, std::uint32_t crc)
{
    crc = ~crc;
    std::uint64_t c = crc;
    while (len >= 8) {
        std::uint64_t word;
        std::memcpy(&word, p, 8);
        c = _mm_crc32_u64(c, word);
        p += 8;
        len -= 8;
    }
    crc = static_cast<std::uint32_t>(c);
    while (len--)
        crc = _mm_crc32_u8(crc, *p++);
    return ~crc;
}
#endif

}  // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t crc)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
#if defined(__x86_64__)
    // The SSE4.2 crc32 instruction (Westmere's, which is where the
    // swChecksumBytesPerCycle = 8 model comes from).
    if (haveSse42())
        return crc32cHw(p, len, crc);
#endif
    crc = ~crc;
    // Slicing-by-eight over aligned 8-byte chunks.
    while (len >= 8) {
        std::uint64_t word;
        std::memcpy(&word, p, 8);
        word ^= crc;
        crc = tables.t[7][word & 0xff] ^
              tables.t[6][(word >> 8) & 0xff] ^
              tables.t[5][(word >> 16) & 0xff] ^
              tables.t[4][(word >> 24) & 0xff] ^
              tables.t[3][(word >> 32) & 0xff] ^
              tables.t[2][(word >> 40) & 0xff] ^
              tables.t[1][(word >> 48) & 0xff] ^
              tables.t[0][(word >> 56) & 0xff];
        p += 8;
        len -= 8;
    }
    while (len--)
        crc = tables.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    return ~crc;
}

std::uint64_t
lineChecksum(const void *line)
{
    // Widen to 8 bytes so eight checksums pack exactly into one line;
    // mix the length in the high word so a line checksum can never be
    // confused with a page checksum of the same bytes.
    return (std::uint64_t{0x4c} << 56) | crc32c(line, kLineBytes);
}

std::uint64_t
pageChecksum(const void *page)
{
    return (std::uint64_t{0x50} << 56) | crc32c(page, kPageBytes);
}

void
xorLine(void *dst, const void *src)
{
    auto *d = static_cast<std::uint64_t *>(dst);
    const auto *s = static_cast<const std::uint64_t *>(src);
    std::uint64_t dbuf[8], sbuf[8];
    std::memcpy(dbuf, d, kLineBytes);
    std::memcpy(sbuf, s, kLineBytes);
    for (int i = 0; i < 8; i++)
        dbuf[i] ^= sbuf[i];
    std::memcpy(dst, dbuf, kLineBytes);
}

void
xorLineInto(void *dst, const void *a, const void *b)
{
    std::uint64_t abuf[8], bbuf[8];
    std::memcpy(abuf, a, kLineBytes);
    std::memcpy(bbuf, b, kLineBytes);
    for (int i = 0; i < 8; i++)
        abuf[i] ^= bbuf[i];
    std::memcpy(dst, abuf, kLineBytes);
}

bool
lineIsZero(const void *line)
{
    std::uint64_t buf[8];
    std::memcpy(buf, line, kLineBytes);
    std::uint64_t acc = 0;
    for (int i = 0; i < 8; i++)
        acc |= buf[i];
    return acc == 0;
}

std::uint64_t
fletcher64(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t lo = 0, hi = 0;
    std::size_t words = len / 4;
    for (std::size_t i = 0; i < words; i++) {
        std::uint32_t w;
        std::memcpy(&w, p + i * 4, 4);
        lo += w;
        hi += lo;
    }
    // Trailing bytes (if any) are folded in one at a time.
    for (std::size_t i = words * 4; i < len; i++) {
        lo += p[i];
        hi += lo;
    }
    return (hi << 32) | (lo & 0xffffffffull);
}

}  // namespace tvarak
