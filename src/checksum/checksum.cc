#include "checksum/checksum.hh"

#include "kernels/kernels.hh"

namespace tvarak {

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t crc)
{
    return kernels::ops().crc32c(data, len, crc);
}

std::uint64_t
lineChecksum(const void *line)
{
    // Widen to 8 bytes so eight checksums pack exactly into one line;
    // mix the length in the high word so a line checksum can never be
    // confused with a page checksum of the same bytes.
    return kDaxClCsumTag | crc32c(line, kLineBytes);
}

std::uint64_t
pageChecksum(const void *page)
{
    return kPageCsumTag | crc32c(page, kPageBytes);
}

void
xorLine(void *dst, const void *src)
{
    kernels::ops().xorInto(dst, src, kLineBytes);
}

void
xorLineInto(void *dst, const void *a, const void *b)
{
    kernels::ops().xorDiff3(dst, a, b, kLineBytes);
}

bool
lineIsZero(const void *line)
{
    return kernels::ops().isZero(line, kLineBytes);
}

std::uint64_t
fletcher64(const void *data, std::size_t len)
{
    return kernels::fletcher64(data, len);
}

}  // namespace tvarak
