/**
 * @file
 * Checksum and parity kernels.
 *
 * All redundancy information in the system is *real*: DAX-CL-checksums
 * are CRC-32C values of actual 64-byte lines, page system-checksums are
 * CRC-32C over 4 KB, and cross-DIMM parity is the actual XOR of the
 * data pages in a RAID-5 stripe. Fault-injection tests rely on this:
 * a corrupted line really fails verification and is really rebuilt.
 *
 * The byte loops themselves live in src/kernels/ behind the
 * runtime-dispatched KernelOps table (scalar slicing-by-eight, SSE4.2
 * hardware CRC32, AVX2); this header is the line/page-semantic facade
 * the rest of the system uses. CRC-32C is both the functional checksum
 * and the model behind the software schemes' compute-cost
 * (SimConfig::swChecksumBytesPerCycle).
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/types.hh"

namespace tvarak {

/** High-byte tag of a widened DAX-CL line checksum ('L'). */
constexpr std::uint64_t kDaxClCsumTag = std::uint64_t{0x4c} << 56;

/** High-byte tag of a widened page system-checksum ('P'). */
constexpr std::uint64_t kPageCsumTag = std::uint64_t{0x50} << 56;

/** High-byte tag of a widened object checksum ('O'). */
constexpr std::uint64_t kObjectCsumTag = std::uint64_t{0x4f} << 56;

/** CRC-32C of @p len bytes at @p data, seeded with @p crc (0 start). */
std::uint32_t crc32c(const void *data, std::size_t len,
                     std::uint32_t crc = 0);

/** Checksum of one 64 B cache line, widened to the packed 8 B format. */
std::uint64_t lineChecksum(const void *line);

/** Page (4 KB) system-checksum. */
std::uint64_t pageChecksum(const void *page);

/** dst[i] ^= src[i] over one cache line. */
void xorLine(void *dst, const void *src);

/** dst[i] = a[i] ^ b[i] over one cache line. */
void xorLineInto(void *dst, const void *a, const void *b);

/** True iff the 64 B line is all zero. */
bool lineIsZero(const void *line);

/**
 * Fletcher-64 checksum; kept as an alternative kernel (PMDK uses a
 * Fletcher variant for its metadata) and exercised by the kernel
 * micro-benchmarks.
 */
std::uint64_t fletcher64(const void *data, std::size_t len);

}  // namespace tvarak

