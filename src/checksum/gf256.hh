/**
 * @file
 * GF(2^8) arithmetic and a systematic Reed-Solomon code over cache
 * lines.
 *
 * The field is GF(2^8) with the primitive polynomial 0x11D
 * (x^8 + x^4 + x^3 + x^2 + 1, the classic Reed-Solomon choice) and
 * generator alpha = 2. Multiplication and inversion go through
 * log/antilog tables built once at first use.
 *
 * RsCode(n, k) is a systematic n+k erasure code: members 0..n-1 are
 * data, members n..n+k-1 are parity, and *any* n of the n+k members
 * suffice to recover the rest. The generator's parity block is a
 * Cauchy matrix C[j][i] = 1 / (x_j + y_i) with x_j = n + j and
 * y_i = i: every square submatrix of a Cauchy matrix is nonsingular,
 * which is exactly the MDS property the any-n-survivors guarantee
 * needs. The matrix is then column-normalized so that parity row
 * 0 is all ones — parity member 0 is the plain XOR of the data
 * members, i.e. the RAID-5 "P" parity, and single-failure
 * reconstruction degenerates to the familiar XOR.
 *
 * Parity maintenance is incremental, matching TVARAK's diff-based
 * updates: when data member i changes by diff (old ^ new),
 * parity_j ^= coeff(j, i) * diff for every j. Full encode is just the
 * incremental update applied from an all-zero state.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tvarak {

namespace gf256 {

/** Product a*b in GF(2^8) / 0x11D. */
std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/** Multiplicative inverse (panics on 0). */
std::uint8_t inv(std::uint8_t a);

/** dst[i] ^= c * src[i] over one 64 B cache line (c==0 is a no-op,
 *  c==1 degenerates to xorLine). */
void mulLineInto(void *dst, const void *src, std::uint8_t c);

}  // namespace gf256

/**
 * Systematic Reed-Solomon n+k erasure code over 64 B cache lines.
 * Member indexing: 0..n-1 data, n..n+k-1 parity. Requires
 * 2 <= n, 1 <= k, n + k <= 255.
 */
class RsCode
{
  public:
    RsCode(std::size_t n, std::size_t k);

    std::size_t n() const { return n_; }
    std::size_t k() const { return k_; }

    /**
     * Process-wide count of RsCode constructions. Building the Cauchy
     * matrix costs O(n*k) field inversions, so hot loops must reuse a
     * cached codec (MemorySystem::rsCodec()); regression tests pin
     * that sweeps construct zero codecs per line.
     */
    static std::uint64_t constructions()
    {
        return constructions_.load(std::memory_order_relaxed);
    }

    /** Generator coefficient of data member @p i in parity member
     *  @p j (j in [0, k)). Row 0 is all ones (XOR parity). */
    std::uint8_t coeff(std::size_t j, std::size_t i) const
    {
        return coeff_[j * n_ + i];
    }

    /** Apply a data diff to one parity line:
     *  parity ^= coeff(j, i) * diff. */
    void updateParity(void *parity, const void *diff, std::size_t j,
                      std::size_t i) const
    {
        gf256::mulLineInto(parity, diff, coeff(j, i));
    }

    /**
     * Full encode: compute all k parity lines from the n data lines.
     * @p members holds n+k line pointers; data members are read,
     * parity members are overwritten.
     */
    void encode(std::uint8_t *const members[]) const;

    /**
     * Recover every missing member from any n survivors.
     *
     * @p members   n+k line pointers; present members are read,
     *              missing ones are overwritten with their recovered
     *              content.
     * @p present   per-member survival flags.
     * @return false iff more than k members are missing (the stripe is
     *         unrecoverable; missing buffers are left untouched).
     */
    bool decode(std::uint8_t *const members[],
                const bool present[]) const;

  private:
    static std::atomic<std::uint64_t> constructions_;

    std::size_t n_;
    std::size_t k_;
    std::vector<std::uint8_t> coeff_;  //!< k x n generator parity block
};

}  // namespace tvarak
