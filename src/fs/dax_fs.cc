#include "fs/dax_fs.hh"

#include <algorithm>
#include <cstring>

#include "checksum/checksum.hh"
#include "checksum/gf256.hh"
#include "kernels/kernels.hh"
#include "redundancy/registry.hh"
#include "sim/log.hh"
#include "trace/sink.hh"

namespace tvarak {

namespace {

/** On-media superblock layout (one page). */
constexpr std::uint64_t kFsMagic = 0x7456'4152'414b'4653ull;
constexpr std::size_t kSbMaxFiles = 50;
constexpr std::size_t kSbNameBytes = 40;

struct SbEntry {
    char name[kSbNameBytes];
    std::uint64_t firstVpage;
    std::uint64_t pages;
    std::uint64_t bytes;
};

struct Superblock {
    std::uint64_t magic;
    std::uint64_t fileCount;
    std::uint64_t nextDataPage;
    std::uint64_t pad;
    SbEntry entries[kSbMaxFiles];
};
static_assert(sizeof(Superblock) <= kPageBytes);

}  // namespace

DaxFs::DaxFs(MemorySystem &mem) : mem_(mem)
{
    // vpage 0 is the superblock; file extents start at vpage 1.
    nextDataPage_ = 1;
    loadSuperblock();
}

void
DaxFs::writeSuperblock()
{
    Superblock sb{};
    sb.magic = kFsMagic;
    sb.nextDataPage = nextDataPage_;
    std::size_t n = 0;
    for (const File &f : files_) {
        if (f.name.empty())
            continue;  // removed
        fatal_if(n >= kSbMaxFiles, "superblock full");
        fatal_if(f.name.size() >= kSbNameBytes, "file name too long");
        std::strncpy(sb.entries[n].name, f.name.c_str(), kSbNameBytes);
        sb.entries[n].firstVpage = f.firstVpage;
        sb.entries[n].pages = f.pages;
        sb.entries[n].bytes = f.bytes;
        n++;
    }
    sb.fileCount = n;
    Addr sb_page = pageOfVpage(0);
    mem_.nvmArray().rawWrite(sb_page, &sb, sizeof(sb));
    // The superblock lives in the parity-covered data region: keep
    // its stripe's parity members (all k roles) consistent with the
    // out-of-band write.
    const Layout &layout = mem_.layout();
    std::vector<Addr> pages;
    layout.stripeDataPages(sb_page, pages);
    const RsCode &rs = mem_.rsCodec();
    std::vector<std::uint8_t> buf(kPageBytes);
    std::vector<Addr> parity_pages;
    for (std::size_t j = 0; j < layout.parityCount(); j++) {
        Addr parity_page = layout.parityPageOf(sb_page, j);
        parity_pages.push_back(parity_page);
        std::vector<std::uint8_t> acc(kPageBytes, 0);
        for (std::size_t i = 0; i < pages.size(); i++) {
            mem_.nvmArray().rawRead(pages[i], buf.data(), kPageBytes);
            for (std::size_t l = 0; l < kLinesPerPage; l++) {
                rs.updateParity(acc.data() + l * kLineBytes,
                                buf.data() + l * kLineBytes, j, i);
            }
        }
        mem_.nvmArray().rawWrite(parity_page, acc.data(), kPageBytes);
    }
    // The raw writes bypass the caches: keep the current-value store
    // in sync for lines no cache holds (the superblock is never read
    // through the timed path, and degraded-mode reconstruction in the
    // current-value world depends on this parity being fresh).
    std::vector<Addr> touched = parity_pages;
    touched.insert(touched.begin(), sb_page);
    std::uint8_t line_buf[kLineBytes];
    for (std::size_t l = 0; l < kLinesPerPage; l++) {
        for (Addr page : touched) {
            Addr line = page + l * kLineBytes;
            mem_.nvmArray().rawRead(line, line_buf, kLineBytes);
            mem_.refreshCurIfUncached(line, line_buf);
        }
    }
}

void
DaxFs::loadSuperblock()
{
    Superblock sb;
    mem_.nvmArray().rawRead(pageOfVpage(0), &sb, sizeof(sb));
    if (sb.magic != kFsMagic)
        return;  // fresh device
    nextDataPage_ = static_cast<std::size_t>(sb.nextDataPage);
    for (std::size_t i = 0; i < sb.fileCount; i++) {
        File f;
        f.name.assign(sb.entries[i].name,
                      strnlen(sb.entries[i].name, kSbNameBytes));
        f.firstVpage = static_cast<std::size_t>(sb.entries[i].firstVpage);
        f.pages = static_cast<std::size_t>(sb.entries[i].pages);
        f.bytes = static_cast<std::size_t>(sb.entries[i].bytes);
        f.mapped = false;  // reboots always come back unmapped
        int fd = static_cast<int>(files_.size());
        for (std::size_t p = 0; p < f.pages; p++)
            mem_.mapDaxPage(f.firstVpage + p, pageOfVpage(f.firstVpage + p));
        byName_[f.name] = fd;
        files_.push_back(std::move(f));
    }
    // Rebuild the free list: everything not covered by a file or the
    // bump cursor is free (derive from gaps between sorted extents).
    std::vector<std::pair<std::size_t, std::size_t>> used;
    used.emplace_back(0, 1);  // superblock
    for (const File &f : files_) {
        if (!f.name.empty())
            used.emplace_back(f.firstVpage, f.pages);
    }
    std::sort(used.begin(), used.end());
    std::size_t cursor = 0;
    for (auto &[first, pages] : used) {
        if (first > cursor)
            freeExtents_.emplace_back(cursor, first - cursor);
        cursor = first + pages;
    }
}

const DaxFs::File &
DaxFs::file(int fd) const
{
    panic_if(fd < 0 || static_cast<std::size_t>(fd) >= files_.size(),
             "bad fd %d", fd);
    return files_[static_cast<std::size_t>(fd)];
}

Addr
DaxFs::pageOfVpage(std::size_t vpage) const
{
    return mem_.layout().nthDataPage(vpage);
}

Addr
DaxFs::filePage(int fd, std::size_t pageIdx) const
{
    const File &f = file(fd);
    panic_if(pageIdx >= f.pages, "page index out of file");
    return pageOfVpage(f.firstVpage + pageIdx);
}

int
DaxFs::create(const std::string &name, std::size_t bytes)
{
    // FS operations are recorded as single high-level events and
    // replayed natively; their bodies run with recording suspended so
    // internal timed accesses are not recorded a second time.
    trace::TraceSink *sink = mem_.traceSink();
    bool rec = sink != nullptr && sink->active();
    trace::SinkSuspend guard(rec ? sink : nullptr);
    fatal_if(byName_.count(name) != 0, "file %s exists", name.c_str());
    std::size_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    fatal_if(pages == 0, "empty file");

    File f;
    f.name = name;
    f.bytes = pages * kPageBytes;
    f.firstVpage = allocVpages(pages);
    f.pages = pages;

    // Install the (kernel-visible) mapping and the initial page
    // checksums over the zeroed pages.
    for (std::size_t p = 0; p < pages; p++) {
        Addr nvm_page = pageOfVpage(f.firstVpage + p);
        mem_.mapDaxPage(f.firstVpage + p, nvm_page);
        writePageChecksumRaw(nvm_page);
    }

    int fd = static_cast<int>(files_.size());
    files_.push_back(std::move(f));
    byName_[name] = fd;
    writeSuperblock();
    // Emitted after the body: the event pins the fd allocation, which
    // replay asserts against (fd assignment is deterministic).
    if (rec)
        sink->onFsCreate(name, bytes, fd);
    return fd;
}

int
DaxFs::open(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? -1 : it->second;
}

std::size_t
DaxFs::allocVpages(std::size_t pages)
{
    // First-fit over recycled extents, then the bump cursor.
    for (auto it = freeExtents_.begin(); it != freeExtents_.end();
         ++it) {
        if (it->second >= pages) {
            std::size_t first = it->first;
            it->first += pages;
            it->second -= pages;
            if (it->second == 0)
                freeExtents_.erase(it);
            return first;
        }
    }
    fatal_if(nextDataPage_ + pages >
                 mem_.layout().allocatableDataPages(),
             "NVM full: need %zu more pages", pages);
    std::size_t first = nextDataPage_;
    nextDataPage_ += pages;
    return first;
}

void
DaxFs::remove(int fd)
{
    trace::TraceSink *sink = mem_.traceSink();
    bool rec = sink != nullptr && sink->active();
    if (rec)
        sink->onFsRemove(fd);
    trace::SinkSuspend guard(rec ? sink : nullptr);
    File &f = files_[static_cast<std::size_t>(fd)];
    panic_if(f.name.empty(), "remove of a removed file");
    if (f.mapped)
        daxUnmap(fd);
    // Zero the pages through the FS write path so parity and page
    // checksums stay consistent for the next owner.
    std::vector<std::uint8_t> zeros(kPageBytes, 0);
    for (std::size_t p = 0; p < f.pages; p++)
        pwrite(0, fd, p * kPageBytes, zeros.data(), zeros.size());
    mem_.flushAll();
    for (std::size_t p = 0; p < f.pages; p++)
        mem_.unmapDaxPage(f.firstVpage + p);
    byName_.erase(f.name);
    freeExtents_.emplace_back(f.firstVpage, f.pages);
    f.name.clear();
    f.bytes = 0;
    f.pages = 0;
    writeSuperblock();
}

std::size_t
DaxFs::fileBytes(int fd) const
{
    return file(fd).bytes;
}

std::size_t
DaxFs::filePages(int fd) const
{
    return file(fd).pages;
}

bool
DaxFs::isMapped(int fd) const
{
    return file(fd).mapped;
}

Addr
DaxFs::vbase(int fd) const
{
    return MemorySystem::daxVaddr(file(fd).firstVpage);
}

void
DaxFs::writePageChecksumRaw(Addr nvmPage)
{
    std::uint8_t page[kPageBytes];
    mem_.nvmArray().rawRead(nvmPage, page, kPageBytes);
    std::uint64_t csum = pageChecksum(page);
    mem_.nvmArray().rawWrite(mem_.layout().pageCsumAddr(nvmPage), &csum,
                             kChecksumBytes);
}

Addr
DaxFs::daxMap(int fd)
{
    trace::TraceSink *sink = mem_.traceSink();
    bool rec = sink != nullptr && sink->active();
    if (rec)
        sink->onFsDaxMap(fd);
    trace::SinkSuspend guard(rec ? sink : nullptr);
    File &f = files_[static_cast<std::size_t>(fd)];
    if (f.mapped)
        return vbase(fd);
    // Coverage hand-off: while unmapped, the FS I/O path caches
    // checksum/parity lines in the *application* hierarchy; while
    // mapped, TVARAK caches them in its own controllers. Drop all
    // cached state at the boundary so neither domain can observe the
    // other's writes stale (map/unmap is a rare, heavyweight event).
    mem_.dropCaches();
    for (std::size_t p = 0; p < f.pages; p++) {
        Addr nvm_page = pageOfVpage(f.firstVpage + p);
        mem_.tvarak().initDaxClChecksums(nvm_page);
        mem_.tvarak().registerDaxPage(nvm_page);
        if (mem_.designObj().engineCoversDaxData()) {
            // Coverage moved to the DAX-CL-checksums: return the page
            // checksum slot to a canonical zero, so the at-rest
            // metadata image is a pure function of the mapping state
            // (which is what the rebuild engine reproduces).
            std::uint64_t zero = 0;
            mem_.nvmArray().rawWrite(
                mem_.layout().pageCsumAddr(nvm_page), &zero,
                kChecksumBytes);
        }
    }
    f.mapped = true;
    return vbase(fd);
}

void
DaxFs::daxUnmap(int fd)
{
    trace::TraceSink *sink = mem_.traceSink();
    bool rec = sink != nullptr && sink->active();
    if (rec)
        sink->onFsDaxUnmap(fd);
    trace::SinkSuspend guard(rec ? sink : nullptr);
    File &f = files_[static_cast<std::size_t>(fd)];
    panic_if(!f.mapped, "unmap of unmapped file");
    // Push all dirty application data through TVARAK's update path and
    // drop cached state (see daxMap), then convert coverage back to
    // page-granular checksums.
    mem_.dropCaches();
    for (std::size_t p = 0; p < f.pages; p++) {
        Addr nvm_page = pageOfVpage(f.firstVpage + p);
        mem_.tvarak().unregisterDaxPage(nvm_page);
        mem_.tvarak().clearDaxClChecksums(nvm_page);
        writePageChecksumRaw(nvm_page);
    }
    f.mapped = false;
}

//
// Non-DAX I/O path (software redundancy, Nova-Fortis style)
//

void
DaxFs::updatePageChecksum(int tid, Addr vpageBase, Addr nvmPage)
{
    // Read the page through the caches (hits for the just-written
    // lines), checksum it in software, store the entry.
    std::uint8_t page[kPageBytes];
    mem_.read(tid, vpageBase, page, kPageBytes);
    mem_.computeChecksum(tid, kPageBytes);
    std::uint64_t csum = pageChecksum(page);
    mem_.write64(tid, nvmDirectVaddr(mem_.layout().pageCsumAddr(nvmPage)),
                 csum);
}

void
DaxFs::pwrite(int tid, int fd, std::size_t offset, const void *buf,
              std::size_t len)
{
    trace::TraceSink *sink = mem_.traceSink();
    bool rec = sink != nullptr && sink->active();
    if (rec)
        sink->onFsPwrite(tid, fd, offset, buf, len);
    trace::SinkSuspend guard(rec ? sink : nullptr);
    const File &f = file(fd);
    panic_if(offset + len > f.bytes, "pwrite beyond EOF");
    const auto *in = static_cast<const std::uint8_t *>(buf);
    Addr base = vbase(fd);

    while (len > 0) {
        std::size_t page_idx = offset / kPageBytes;
        Addr vpage_base = base + page_idx * kPageBytes;
        Addr nvm_page = filePage(fd, page_idx);
        std::size_t in_page =
            std::min(len, kPageBytes - pageOffset(offset));

        if (f.mapped) {
            // TVARAK (or the cache hierarchy alone, for the other
            // designs) covers mapped files; just write the data.
            mem_.write(tid, base + offset, in, in_page);
        } else {
            // Software redundancy: per affected line, diff-update the
            // parity, then write the data and refresh the checksum.
            std::size_t done = 0;
            while (done < in_page) {
                Addr vaddr = base + offset + done;
                std::size_t n =
                    std::min(in_page - done, kLineBytes - lineOffset(vaddr));
                std::uint8_t old_line[kLineBytes];
                std::uint8_t new_line[kLineBytes];
                Addr vline = lineBase(vaddr);
                mem_.read(tid, vline, old_line, kLineBytes);
                std::memcpy(new_line, old_line, kLineBytes);
                std::memcpy(new_line + lineOffset(vaddr), in + done, n);

                Addr nvm_line =
                    nvm_page + lineInPage(vaddr) * kLineBytes;
                const Layout &layout = mem_.layout();
                if (layout.parityCount() == 1) {
                    Addr parity_v =
                        nvmDirectVaddr(layout.parityLineOf(nvm_line));
                    std::uint8_t parity[kLineBytes];
                    mem_.read(tid, parity_v, parity, kLineBytes);
                    xorLine(parity, old_line);
                    xorLine(parity, new_line);
                    mem_.write(tid, parity_v, parity, kLineBytes);
                } else {
                    // Reed-Solomon geometry: every parity role takes
                    // the coefficient-weighted diff.
                    const RsCode &rs = mem_.rsCodec();
                    std::size_t di = layout.dataMemberIndexOf(nvm_line);
                    std::uint8_t diff[kLineBytes];
                    xorLineInto(diff, old_line, new_line);
                    for (std::size_t j = 0; j < layout.parityCount();
                         j++) {
                        Addr parity_v = nvmDirectVaddr(
                            layout.parityLineOf(nvm_line, j));
                        std::uint8_t parity[kLineBytes];
                        mem_.read(tid, parity_v, parity, kLineBytes);
                        rs.updateParity(parity, diff, j, di);
                        mem_.write(tid, parity_v, parity, kLineBytes);
                    }
                }

                mem_.write(tid, vaddr, in + done, n);
                done += n;
            }
            updatePageChecksum(tid, vpage_base, nvm_page);
        }
        offset += in_page;
        in += in_page;
        len -= in_page;
    }
}

bool
DaxFs::pread(int tid, int fd, std::size_t offset, void *buf,
             std::size_t len)
{
    trace::TraceSink *sink = mem_.traceSink();
    bool rec = sink != nullptr && sink->active();
    if (rec)
        sink->onFsPread(tid, fd, offset, len);
    trace::SinkSuspend guard(rec ? sink : nullptr);
    const File &f = file(fd);
    panic_if(offset + len > f.bytes, "pread beyond EOF");
    auto *out = static_cast<std::uint8_t *>(buf);
    Addr base = vbase(fd);
    bool ok = true;

    while (len > 0) {
        std::size_t page_idx = offset / kPageBytes;
        Addr vpage_base = base + page_idx * kPageBytes;
        Addr nvm_page = filePage(fd, page_idx);
        std::size_t in_page =
            std::min(len, kPageBytes - pageOffset(offset));

        mem_.read(tid, base + offset, out, in_page);

        if (!f.mapped) {
            // Verify the whole page against its system-checksum.
            std::uint8_t page[kPageBytes];
            mem_.read(tid, vpage_base, page, kPageBytes);
            mem_.computeChecksum(tid, kPageBytes);
            std::uint64_t expected = mem_.read64(
                tid,
                nvmDirectVaddr(mem_.layout().pageCsumAddr(nvm_page)));
            if (pageChecksum(page) != expected) {
                mem_.stats().corruptionsDetected++;
                ok = recoverPage(fd, page_idx) && ok;
                // Hand the repaired bytes to the caller.
                mem_.read(tid, base + offset, out, in_page);
            }
        }
        offset += in_page;
        out += in_page;
        len -= in_page;
    }
    return ok;
}

bool
DaxFs::recoverPage(int fd, std::size_t pageIdx)
{
    Addr nvm_page = filePage(fd, pageIdx);
    Addr vpage_base = vbase(fd) + pageIdx * kPageBytes;
    for (std::size_t l = 0; l < kLinesPerPage; l++)
        mem_.tvarak().recoverLine(nvm_page + l * kLineBytes, false);
    mem_.refreshFromMedia(vpage_base, kPageBytes);

    std::uint8_t page[kPageBytes];
    mem_.nvmArray().rawRead(nvm_page, page, kPageBytes);
    std::uint64_t expected;
    mem_.nvmArray().rawRead(mem_.layout().pageCsumAddr(nvm_page),
                            &expected, kChecksumBytes);
    return pageChecksum(page) == expected;
}

//
// Integrity utilities
//

bool
DaxFs::fdLive(int fd) const
{
    return fd >= 0 && static_cast<std::size_t>(fd) < files_.size() &&
        !files_[static_cast<std::size_t>(fd)].name.empty();
}

bool
DaxFs::scrubbable(int fd) const
{
    const File &f = file(fd);
    if (f.name.empty())
        return false;
    // Coverage of a *mapped* file depends on the active design:
    // TVARAK maintains DAX-CL-checksums, page-checksum schemes
    // (TxB-Page-Csums, Vilamb) maintain the page checksum slots,
    // TxB-Object-Csums is scrubbed via PmemPool::verifyObjects, and
    // Baseline has no coverage (Table I).
    return !f.mapped || mem_.designObj().coversMappedFiles();
}

std::size_t
DaxFs::scrubPage(int fd, std::size_t pageIdx, bool repair)
{
    const File &f = file(fd);
    panic_if(f.name.empty(), "scrubPage on removed fd %d", fd);
    panic_if(pageIdx >= f.pages, "scrubPage page out of range");
    Addr nvm_page = pageOfVpage(f.firstVpage + pageIdx);
    NvmArray &nvm = mem_.nvmArray();
    const Layout &layout = mem_.layout();
    Stats &stats = mem_.stats();
    bool degraded = nvm.anyDegraded();
    // A degraded page is served by reconstruction until the rebuild
    // engine passes it; its media is not expected to verify. The
    // rebuild watermark is monotonic over each DIMM's media, so the
    // page's last line degrades first.
    if (degraded && nvm.lineDegraded(nvm_page + kPageBytes - kLineBytes))
        return 0;
    std::size_t bad_lines = 0;
    if (f.mapped && mem_.designObj().engineCoversDaxData()) {
        for (std::size_t l = 0; l < kLinesPerPage; l++) {
            Addr line = nvm_page + l * kLineBytes;
            Addr csum_line = layout.daxClCsumLine(line);
            if (degraded && nvm.lineDegraded(csum_line))
                continue;  // checksum storage itself is degraded
            std::uint8_t data[kLineBytes];
            nvm.rawRead(line, data, kLineBytes);
            std::uint8_t cbuf[kLineBytes];
            mem_.tvarak().peekRedLine(csum_line, cbuf);
            std::uint64_t expected;
            std::memcpy(&expected,
                        cbuf + (layout.daxClCsumAddr(line) - csum_line),
                        kChecksumBytes);
            stats.scrubLines++;
            if (lineChecksum(data) != expected) {
                bad_lines++;
                if (repair) {
                    mem_.tvarak().recoverLine(line, true);
                    stats.scrubRepairs++;
                }
            }
        }
        return bad_lines;
    }
    Addr slot = layout.pageCsumAddr(nvm_page);
    if (degraded && nvm.lineDegraded(lineBase(slot)))
        return 0;
    std::uint8_t page[kPageBytes];
    nvm.rawRead(nvm_page, page, kPageBytes);
    std::uint64_t expected;
    nvm.rawRead(slot, &expected, kChecksumBytes);
    stats.scrubLines += kLinesPerPage;
    if (pageChecksum(page) != expected) {
        bad_lines++;
        if (repair) {
            recoverPage(fd, pageIdx);
            stats.scrubRepairs++;
        }
    }
    return bad_lines;
}

std::size_t
DaxFs::scrub(bool repair)
{
    std::size_t bad_lines = 0;
    for (std::size_t fd = 0; fd < files_.size(); fd++) {
        int ifd = static_cast<int>(fd);
        if (!fdLive(ifd) || !scrubbable(ifd))
            continue;
        for (std::size_t p = 0; p < files_[fd].pages; p++)
            bad_lines += scrubPage(ifd, p, repair);
    }
    return bad_lines;
}

std::size_t
DaxFs::verifyParity()
{
    const Layout &layout = mem_.layout();
    const std::size_t n = layout.dataCount();
    const std::size_t k = layout.parityCount();
    const RsCode &rs = mem_.rsCodec();
    std::size_t bad = 0;
    std::vector<Addr> pages;
    std::vector<std::vector<std::uint8_t>> acc(
        k, std::vector<std::uint8_t>(kPageBytes));
    std::vector<std::uint8_t> page(kPageBytes);
    // Only stripes that can hold allocated data need checking; the
    // rest are all-zero and trivially consistent.
    std::size_t used_stripes = (nextDataPage_ + n - 1) / n;
    for (std::size_t s = 0; s < used_stripes; s++) {
        Addr first = layout.dataBase() +
            static_cast<Addr>(s) * layout.dimms() * kPageBytes;
        if (mem_.nvmArray().anyDegraded()) {
            // A stripe with a degraded member cannot satisfy the
            // invariant on media until the rebuild engine passes it.
            bool skip = false;
            for (std::size_t m = 0; m < layout.dimms() && !skip; m++) {
                Addr last_line = first +
                    static_cast<Addr>(m + 1) * kPageBytes - kLineBytes;
                skip = mem_.nvmArray().lineDegraded(last_line);
            }
            if (skip)
                continue;
        }
        // Re-encode the stripe's data members and compare every
        // parity role against media (role 0 degenerates to the XOR
        // check the single-parity designs have always used).
        for (std::size_t j = 0; j < k; j++) {
            mem_.nvmArray().rawRead(layout.parityPageOf(first, j),
                                    acc[j].data(), kPageBytes);
        }
        layout.stripeDataPages(first, pages);
        for (std::size_t i = 0; i < pages.size(); i++) {
            mem_.nvmArray().rawRead(pages[i], page.data(), kPageBytes);
            for (std::size_t j = 0; j < k; j++) {
                for (std::size_t l = 0; l < kLinesPerPage; l++) {
                    rs.updateParity(acc[j].data() + l * kLineBytes,
                                    page.data() + l * kLineBytes, j, i);
                }
            }
        }
        bool stripe_bad = false;
        for (std::size_t j = 0; j < k && !stripe_bad; j++) {
            stripe_bad =
                !kernels::ops().isZero(acc[j].data(), kPageBytes);
        }
        if (stripe_bad)
            bad++;
    }
    return bad;
}

}  // namespace tvarak
