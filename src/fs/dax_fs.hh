/**
 * @file
 * DaxFs: the NVM file system that cooperates with TVARAK.
 *
 * Responsibilities (paper Sections II-B, III-B):
 *
 *  - allocate files over the RAID-5 data pages (virtually contiguous,
 *    physically skipping parity pages, Fig 3);
 *  - dax_map / dax_unmap: register/unregister file pages with the
 *    TVARAK engine and convert between page-granular system-checksums
 *    (held while a file is only reachable through FS calls) and
 *    DAX-CL-checksums (held while it is DAX mapped);
 *  - a Nova-Fortis-style non-DAX I/O path (pread/pwrite) that updates
 *    and verifies page system-checksums and parity in software;
 *  - scrubbing and recovery entry points.
 *
 * Files are always present in the DAX page table (the kernel direct
 * map); daxMap() only flips redundancy-coverage state and hands the
 * application its virtual base address.
 *
 * The namespace persists in a superblock (the first data page), so a
 * DaxFs constructed over an existing NVM image (see
 * MemorySystem::loadNvmImage) rediscovers its files — files come back
 * unmapped, exactly like a real DAX file system after reboot.
 */

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/memory_system.hh"
#include "sim/types.hh"

namespace tvarak {

class DaxFs
{
  public:
    explicit DaxFs(MemorySystem &mem);

    /** @name Namespace & allocation */
    /**@{*/
    /** Create a file of @p bytes (page-rounded), zero-filled.
     *  @return file descriptor. */
    int create(const std::string &name, std::size_t bytes);
    /** Look up an existing file. @return fd or -1. */
    int open(const std::string &name) const;
    /**
     * Delete a file: unmaps it if mapped, zeroes its pages (with the
     * parity/page-checksum updates that implies) and recycles them
     * for future create() calls. The fd becomes invalid.
     */
    void remove(int fd);
    std::size_t fileBytes(int fd) const;
    std::size_t filePages(int fd) const;
    /**@}*/

    /** @name DAX mapping */
    /**@{*/
    /**
     * Map the file into the application's address space. Registers
     * every page with TVARAK and installs DAX-CL-checksums (the
     * map-time checksum conversion is software work outside the
     * measured steady state and is untimed).
     * @return virtual base address of the mapping.
     */
    Addr daxMap(int fd);
    /** Flush the file's dirty lines and convert checksums back to
     *  page granularity; unregisters from TVARAK. */
    void daxUnmap(int fd);
    bool isMapped(int fd) const;
    /** Virtual base address (valid whether or not DAX mapped). */
    Addr vbase(int fd) const;
    /**@}*/

    /** @name Non-DAX I/O path (page system-checksums in software) */
    /**@{*/
    void pwrite(int tid, int fd, std::size_t offset, const void *buf,
                std::size_t len);
    /** @return false if a verification failed and recovery also
     *  failed (never expected under the single-fault model). */
    bool pread(int tid, int fd, std::size_t offset, void *buf,
               std::size_t len);
    /**@}*/

    /** @name Integrity utilities (untimed) */
    /**@{*/
    /**
     * Verify every page of every file against its at-rest redundancy
     * (DAX-CL-checksums for mapped files, page checksums otherwise).
     * Call flushAll() first for a meaningful at-rest check.
     * @param repair  rebuild corrupted lines from parity.
     * @return number of corrupted lines found.
     */
    std::size_t scrub(bool repair);
    /** Verify the stripe parity invariant over all allocated stripes.
     *  @return number of violating stripes (0 after a flush). */
    std::size_t verifyParity();
    /**@}*/

    /** NVM-global address of file page @p pageIdx. */
    Addr filePage(int fd, std::size_t pageIdx) const;

    /** Number of files ever created (fds; removed slots included). */
    std::size_t fileSlots() const { return files_.size(); }
    /** True iff @p fd still names a live file. */
    bool fdLive(int fd) const;
    /** Allocation high-water mark in vpages (superblock excluded).
     *  Page-checksum slots of vpages at or above this were never
     *  written; the rebuild engine restores them to zero. */
    std::size_t vpageCursor() const { return nextDataPage_; }

    /**
     * Scrub one page of one file against its at-rest redundancy
     * (the per-page unit the background Scrubber iterates). Skips —
     * without counting — pages whose data or checksum storage is
     * degraded: those are served by reconstruction until the rebuild
     * engine passes them. Updates the scrubLines/scrubRepairs stats.
     * @return number of corrupted lines found.
     */
    std::size_t scrubPage(int fd, std::size_t pageIdx, bool repair);
    /** True iff @p fd's redundancy coverage is scrubbable under the
     *  active design (Table I). */
    bool scrubbable(int fd) const;

    /** Rebuild one file page from parity (untimed).
     *  @return true if the page verifies after repair. */
    bool recoverPage(int fd, std::size_t pageIdx);

  private:
    struct File {
        std::string name;
        std::size_t bytes;
        std::size_t firstVpage;  //!< contiguous vpage range
        std::size_t pages;
        bool mapped = false;
    };

    const File &file(int fd) const;
    /** NVM-global page backing vpage index @p vpage. */
    Addr pageOfVpage(std::size_t vpage) const;
    /** Recompute + store (raw) the page checksum of @p nvmPage. */
    void writePageChecksumRaw(Addr nvmPage);
    /** Software page-checksum update for the timed pwrite path. */
    void updatePageChecksum(int tid, Addr vpageBase, Addr nvmPage);

    /** Claim @p pages contiguous vpages (free list first). */
    std::size_t allocVpages(std::size_t pages);
    /** Persist the namespace to the superblock page (raw). */
    void writeSuperblock();
    /** Load the namespace from the superblock, if one exists. */
    void loadSuperblock();

    MemorySystem &mem_;
    std::vector<File> files_;
    std::unordered_map<std::string, int> byName_;
    std::size_t nextDataPage_ = 0;  //!< allocation cursor
    /** Recycled extents: (firstVpage, pages). */
    std::vector<std::pair<std::size_t, std::size_t>> freeExtents_;
};

}  // namespace tvarak

