#include "fs/scrubber.hh"

#include "sim/types.hh"

namespace tvarak {

Scrubber::Scrubber(DaxFs &fs, bool repair) : fs_(fs), repair_(repair) {}

bool
Scrubber::seek()
{
    // The namespace can change between steps: clamp and skip instead
    // of assuming the cursor is still valid.
    while (fd_ < fs_.fileSlots()) {
        int fd = static_cast<int>(fd_);
        if (fs_.fdLive(fd) && fs_.scrubbable(fd) &&
            page_ < fs_.filePages(fd)) {
            return true;
        }
        fd_++;
        page_ = 0;
    }
    return false;
}

std::size_t
Scrubber::step(std::size_t lineBudget)
{
    std::size_t bad = 0;
    std::size_t lines = 0;
    while (lines < lineBudget) {
        if (!seek()) {
            // Pass complete: wrap, and give object-granular coverage
            // its (unbudgetable) sweep.
            passes_++;
            if (objectSweep_)
                badObjectsTotal_ += objectSweep_();
            fd_ = 0;
            page_ = 0;
            if (!seek())
                break;  // nothing scrubbable at all
        }
        bad += fs_.scrubPage(static_cast<int>(fd_), page_, repair_);
        lines += kLinesPerPage;
        page_++;
        if (page_ >= fs_.filePages(static_cast<int>(fd_))) {
            fd_++;
            page_ = 0;
        }
    }
    badLinesTotal_ += bad;
    return bad;
}

}  // namespace tvarak
