/**
 * @file
 * Scrubber: rate-limited background integrity scrubbing.
 *
 * Generalizes DaxFs::scrub() into an incremental service that runs
 * under all four designs while a workload executes: each step() call
 * verifies at most a budgeted number of lines against their at-rest
 * redundancy (DaxFs::scrubPage picks the coverage per Table I —
 * DAX-CL-checksums for TVARAK-mapped files, page checksums otherwise)
 * and optionally repairs mismatches from parity. A cursor of
 * (fd, page) persists across steps; when it wraps, one *pass* is
 * complete. Under TxB-Object-Csums the owner attaches an object sweep
 * (e.g. PmemPool::verifyObjects) that runs at the end of each pass —
 * object-granular coverage cannot be line-budgeted. The sweep is a
 * callback so fs/ never depends on the pmem library above it (the
 * layering DAG is enforced by tvarak-lint rule R9).
 *
 * Degraded pages are skipped (inside DaxFs::scrubPage) — they are
 * served by reconstruction until the rebuild engine passes them — so
 * the scrubber can keep running across a whole-DIMM failure.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "fs/dax_fs.hh"

namespace tvarak {

class Scrubber
{
  public:
    /** @param repair  rebuild corrupted lines from parity in place. */
    Scrubber(DaxFs &fs, bool repair);

    /**
     * Run @p sweep at the end of every pass and accumulate its return
     * value (checksum mismatches found) into badObjectsTotal(). For
     * TxB-Object-Csums pass `[&pool] { return pool.verifyObjects(); }`.
     */
    void attachObjectSweep(std::function<std::size_t()> sweep)
    {
        objectSweep_ = std::move(sweep);
    }

    /**
     * Scrub forward by at most @p lineBudget lines. Files created or
     * removed between steps are picked up on the fly.
     * @return corrupted lines found in this step.
     */
    std::size_t step(std::size_t lineBudget);

    /** Complete passes over the namespace so far. */
    std::size_t passes() const { return passes_; }
    /** Corrupted lines found since construction. */
    std::size_t badLinesTotal() const { return badLinesTotal_; }
    /** Object-checksum mismatches found by pool sweeps. */
    std::size_t badObjectsTotal() const { return badObjectsTotal_; }

  private:
    /** Advance the cursor to the next live, scrubbable page. */
    bool seek();

    DaxFs &fs_;
    std::function<std::size_t()> objectSweep_;
    bool repair_;
    std::size_t fd_ = 0;    //!< cursor: file slot
    std::size_t page_ = 0;  //!< cursor: page within fd_
    std::size_t passes_ = 0;
    std::size_t badLinesTotal_ = 0;
    std::size_t badObjectsTotal_ = 0;
};

}  // namespace tvarak
