/**
 * @file
 * The TVARAK redundancy engine (paper Section III).
 *
 * One TVARAK controller sits at each LLC bank. The engine bundles the
 * per-bank controller state and the shared structures:
 *
 *  - a DAX page registry (the software-managed part: DaxFs registers
 *    pages at dax-map time; the hardware's address-range comparators
 *    are modelled by a 2-cycle range-match charge);
 *  - per-bank 4 KB on-controller redundancy caches, kept coherent
 *    between controllers with a MESI-style directory and backed
 *    inclusively by per-bank LLC redundancy way-partitions;
 *  - per-bank LLC data-diff way-partitions;
 *  - the verification engine (every NVM->LLC fill of a DAX line) and
 *    the update engine (every LLC->NVM writeback of a DAX line);
 *  - line recovery from cross-DIMM parity on checksum mismatch.
 *
 * Design-ablation switches (TvarakParams::use*) reproduce Fig 9:
 * with all three off this is the naive controller of Section III
 * (page-granular checksums that read the whole page, no redundancy
 * caching, old-data reads instead of diffs).
 *
 * Timing contract: verification work is on the demand path and its
 * cycles are *returned* to the caller to charge to the loading thread;
 * update work happens at writeback time, off the critical path — it
 * contributes NVM occupancy and energy only.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "checksum/gf256.hh"
#include "layout/layout.hh"
#include "mem/cache.hh"
#include "nvm/nvm.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tvarak {

class TvarakEngine
{
  public:
    TvarakEngine(const SimConfig &cfg, Layout &layout, NvmArray &nvm,
                 Stats &stats);

    /** @name Software management interface (used by DaxFs). */
    /**@{*/
    /** Register @p nvmPage (global, page-aligned) as DAX mapped. */
    void registerDaxPage(Addr nvmPage);
    /** Unregister; caller must have flushed + downgraded checksums. */
    void unregisterDaxPage(Addr nvmPage);
    /** Is this NVM-global address inside a registered DAX page? */
    bool isDaxData(Addr nvmAddr) const;
    /**@}*/

    /** @name Hooks called by MemorySystem at the LLC/NVM boundary. */
    /**@{*/
    /**
     * A DAX line was just read from NVM into the LLC: verify it
     * against its DAX-CL-checksum (or page checksum in naive mode).
     * On mismatch the line is recovered in place (both @p lineData and
     * the NVM media are repaired).
     *
     * @param bank      LLC bank of the data line (= controller index).
     * @param nvmAddr   NVM-global line address.
     * @param lineData  the 64 B just fetched; repaired on corruption.
     * @return demand-path cycles consumed by verification.
     */
    Cycles verifyFill(std::size_t bank, Addr nvmAddr,
                      std::uint8_t *lineData);

    /**
     * A DAX line in the LLC transitioned clean->dirty or received new
     * dirty data: capture/refresh its diff in the bank's diff
     * partition (paper Section III-D). No-op unless useDataDiffs.
     *
     * The diff's *value* is always (media XOR current-line), which the
     * engine reconstructs at writeback time; the partition models the
     * capacity/eviction behaviour. If inserting the diff evicts
     * another line's diff, that line must be written back and marked
     * clean by the caller (paper: "writes back the corresponding data
     * without evicting it from the LLC"); its address is returned.
     */
    std::optional<Addr> captureDiff(std::size_t bank, Addr nvmAddr);

    /** How the diff for a writeback was obtained (timing only). */
    enum class DiffSource {
        Stored,        //!< taken from the diff partition
        EvictedDiff,   //!< handed over by a diff-partition eviction
        None,          //!< not stored: old data re-read from NVM
    };

    /**
     * A dirty DAX line is being written back from the LLC to NVM:
     * update its DAX-CL-checksum (or page checksum) and the
     * cross-DIMM parity. The caller writes @p newData to NVM
     * immediately afterwards.
     */
    void updateRedundancy(std::size_t bank, Addr nvmAddr,
                          const std::uint8_t *newData, DiffSource source);

    /** Drop any stored diff for @p nvmAddr (line evicted/invalidated). */
    void dropDiff(std::size_t bank, Addr nvmAddr);
    /** True iff a diff is stored for @p nvmAddr. */
    bool hasDiff(std::size_t bank, Addr nvmAddr) const;
    /**@}*/

    /**
     * Rebuild one line from parity + stripe siblings (paper: the file
     * system initiates recovery; the heavy lifting is here). Media is
     * repaired in place.
     *
     * @param verifyChecksum  check the rebuilt line against its
     *        DAX-CL-checksum (disabled by DaxFs for unmapped pages,
     *        whose cache-line checksums are not maintained).
     * @return the corrected 64 B.
     */
    std::array<std::uint8_t, kLineBytes> recoverLine(
        Addr nvmAddr, bool verifyChecksum = true);

    /** @name Whole-DIMM failure support */
    /**@{*/
    /**
     * Reconstruct the at-rest content of line @p nvmAddr from the
     * authoritative parity line(s) and the at-rest stripe survivors.
     * With a single parity member this is the RAID-5 degraded read
     * (XOR of parity and siblings; @p nvmAddr must not be a parity
     * page). With k >= 2 parity members it is a Reed-Solomon decode
     * from any n survivors, and parity members can be reconstructed
     * too. Untimed.
     * @return false iff more members are lost than the code can
     *         tolerate; @p out is then poison (detectable loss). The
     *         single-parity path always returns true — under a double
     *         fault it produces garbage that downstream checksums
     *         catch, preserving the pre-RS behaviour bit for bit.
     */
    bool reconstructFromParity(Addr nvmAddr, std::uint8_t *out);
    /**
     * Drop every cached redundancy line whose home is @p dimm: the
     * backing storage is gone and the rebuild engine will recompute
     * checksums and parity from data, so cached copies — dirty ones
     * included — are dead weight that writebacks could not land anyway.
     */
    void invalidateRedLinesOfDimm(std::size_t dimm);
    /**
     * True iff @p nvmAddr's fill verification cannot run because the
     * checksum storage it needs is itself degraded (checksum metadata
     * is not parity protected). Callers skip and count the skip.
     */
    bool verificationBlocked(Addr nvmAddr) const;
    /**
     * Checksum-verify a line that was served by reconstruction
     * (degraded read). Detection only: on mismatch the line is counted
     * and poisoned — there is no second redundancy copy to recover
     * from while the DIMM is down.
     * @return demand-path cycles.
     */
    Cycles verifyReconstructed(std::size_t bank, Addr nvmAddr,
                               std::uint8_t *lineData);
    /**@}*/

    /** Write back all dirty redundancy state (battery-flush / unmap). */
    void flushRedundancy();

    /** Drop all (clean) cached redundancy state and stored diffs.
     *  @pre flushRedundancy() has run; panics on dirty state. Used to
     *  model a cold restart in tests and experiments. */
    void dropCleanState();

    /** Initialize the DAX-CL-checksums for a page from its current
     *  media content (checksum "downgrade" at dax-map time; untimed,
     *  performed by software per the paper). */
    void initDaxClChecksums(Addr nvmPage);

    /** Zero a page's DAX-CL-checksum slots (dax-unmap time: coverage
     *  moved back to the page-granular checksum, so the slots return
     *  to their never-mapped state). */
    void clearDaxClChecksums(Addr nvmPage);

    /** Authoritative (cache-coherent) read of a redundancy line,
     *  untimed; used by scrub/verification utilities. */
    void peekRedLine(Addr raddr, std::uint8_t *out);

    /** Hook invoked after a successful line recovery. */
    std::function<void(Addr nvmAddr)> onRecovery;

    /** Dedicated SRAM bytes per controller (area accounting). */
    std::size_t dedicatedBytesPerController() const;

    const TvarakParams &params() const { return params_; }

  private:
    /** Home LLC bank of a redundancy line. */
    std::size_t homeBank(Addr raddr) const;

    /** Reed-Solomon joint decode of @p lineAddr's stripe at its line
     *  offset (k >= 2 only): survivors in, missing members out.
     *  @return false past the k-failure budget (@p out poisoned). */
    bool reconstructRs(Addr lineAddr, std::uint8_t *out);

    /**
     * Access one redundancy line through the caching hierarchy
     * (on-controller cache -> LLC partition -> NVM), honouring
     * useRedundancyCaching.
     *
     * @param ctrl    controller performing the access.
     * @param raddr   redundancy line address (checksum/parity line).
     * @param write   if true @p buf is stored, else loaded.
     * @param demand  if true, returned cycles model the demand path.
     * @return demand-path cycles (0 when @p demand is false).
     */
    Cycles redLineAccess(std::size_t ctrl, Addr raddr, bool write,
                         std::uint8_t *buf, bool demand);

    /** Tally an NVM redundancy access as checksum- or parity-line. */
    void classifyRedNvmAccess(Addr raddr);

    /** Uncached variant (useRedundancyCaching == false). */
    Cycles redLineAccessUncached(Addr raddr, bool write, std::uint8_t *buf,
                                 bool demand);

    /** Fill @p raddr into LLC partition + controller cache; returns
     *  pointer to the controller-cache line. */
    Cache::Line *fillRedLine(std::size_t ctrl, Addr raddr,
                             const std::uint8_t *data);

    /** Evict handling for controller-cache and LLC-partition victims. */
    void handleCtrlVictim(std::size_t ctrl, const Cache::Victim &victim);
    void handleLlcRedVictim(const Cache::Victim &victim);

    /** MESI bookkeeping: make @p ctrl the exclusive owner of @p raddr. */
    void invalidateOtherSharers(std::size_t ctrl, Addr raddr);
    /** Pull a dirty copy (if any) down to the LLC partition. */
    void recallOwner(Addr raddr, std::size_t exceptCtrl);

    /** Compute + store the page-granular checksum (naive mode). */
    void naivePageChecksumUpdate(std::size_t bank, Addr nvmAddr,
                                 const std::uint8_t *newData);
    /** Verify against the page checksum (naive mode). */
    Cycles naivePageChecksumVerify(std::size_t bank, Addr nvmAddr,
                                   std::uint8_t *lineData);

    /** Read the current at-rest page content with @p nvmAddr's line
     *  replaced by @p newData, charging @p chargeAccesses NVM reads. */
    std::uint64_t pageChecksumWith(Addr nvmAddr,
                                   const std::uint8_t *newData,
                                   bool chargeAccesses);

    const SimConfig &cfg_;
    TvarakParams params_;
    Layout &layout_;
    NvmArray &nvm_;
    Stats &stats_;
    std::size_t banks_;

    /** DAX registry: bit per data-region page. */
    std::vector<bool> daxPages_;

    /** Per-controller on-controller redundancy caches. */
    std::vector<Cache> ctrlCaches_;
    /** Per-bank LLC redundancy way-partitions. */
    std::vector<Cache> llcRedPartitions_;
    /** Per-bank LLC data-diff way-partitions. */
    std::vector<Cache> diffPartitions_;

    /** Directory over controller caches: sharer mask + owner. */
    struct DirEntry {
        std::uint32_t sharers = 0;
        std::int8_t owner = -1;
    };
    std::unordered_map<Addr, DirEntry> directory_;

    /** The stripe's erasure code; null under single-XOR parity. */
    std::unique_ptr<RsCode> rs_;
};

}  // namespace tvarak

