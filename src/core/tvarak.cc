#include "core/tvarak.hh"

#include <cstring>

#include "checksum/checksum.hh"
#include "kernels/kernels.hh"
#include "sim/log.hh"

namespace tvarak {

namespace {

std::uint64_t
load64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

void
store64(std::uint8_t *p, std::uint64_t v)
{
    std::memcpy(p, &v, 8);
}

}  // namespace

TvarakEngine::TvarakEngine(const SimConfig &cfg, Layout &layout,
                           NvmArray &nvm, Stats &stats)
    : cfg_(cfg),
      params_(cfg.tvarak),
      layout_(layout),
      nvm_(nvm),
      stats_(stats),
      banks_(cfg.llcBanks),
      daxPages_(layout.dataPages(), false)
{
    std::size_t llc_sets =
        cfg.llcBank.sizeBytes / (cfg.llcBank.ways * kLineBytes);
    for (std::size_t b = 0; b < banks_; b++) {
        ctrlCaches_.push_back(Cache::fromSize(
            "tvarak-ctrl" + std::to_string(b), params_.cacheBytes,
            params_.cacheWays, 1, true));
        llcRedPartitions_.emplace_back(
            "llc-red" + std::to_string(b), llc_sets,
            params_.redundancyWays, banks_, true);
        diffPartitions_.emplace_back("llc-diff" + std::to_string(b),
                                     llc_sets, params_.diffWays,
                                     banks_);
    }
    if (layout_.parityCount() > 1) {
        rs_ = std::make_unique<RsCode>(layout_.dataCount(),
                                       layout_.parityCount());
    }
}

std::size_t
TvarakEngine::dedicatedBytesPerController() const
{
    // Only the on-controller cache occupies dedicated SRAM; the LLC
    // partitions are borrowed ways (paper Section III-E: 4 KB per 2 MB
    // bank = 0.2% dedicated area).
    return params_.cacheBytes;
}

void
TvarakEngine::registerDaxPage(Addr nvmPage)
{
    panic_if(!layout_.isDataAddr(nvmPage) || pageOffset(nvmPage) != 0,
             "bad DAX page registration");
    daxPages_[pageNumber(nvmPage - layout_.dataBase())] = true;
}

void
TvarakEngine::unregisterDaxPage(Addr nvmPage)
{
    daxPages_[pageNumber(nvmPage - layout_.dataBase())] = false;
}

bool
TvarakEngine::isDaxData(Addr nvmAddr) const
{
    if (!layout_.isDataAddr(nvmAddr))
        return false;
    return daxPages_[pageNumber(nvmAddr - layout_.dataBase())];
}

std::size_t
TvarakEngine::homeBank(Addr raddr) const
{
    return static_cast<std::size_t>(lineNumber(raddr)) % banks_;
}

//
// Redundancy-line access path
//

void
TvarakEngine::classifyRedNvmAccess(Addr raddr)
{
    if (layout_.isMetaAddr(raddr))
        stats_.nvmCsumLineAccesses++;
    else
        stats_.nvmParityLineAccesses++;
}

Cycles
TvarakEngine::redLineAccessUncached(Addr raddr, bool write,
                                    std::uint8_t *buf, bool demand)
{
    classifyRedNvmAccess(raddr);
    Cycles lat = write ? nvm_.access(raddr, true, buf, true)
                       : nvm_.access(raddr, false, buf, true);
    return demand ? lat : 0;
}

void
TvarakEngine::recallOwner(Addr raddr, std::size_t exceptCtrl)
{
    auto it = directory_.find(raddr);
    if (it == directory_.end() || it->second.owner < 0)
        return;
    auto owner = static_cast<std::size_t>(it->second.owner);
    if (owner == exceptCtrl)
        return;
    Cache::Line *line = ctrlCaches_[owner].probe(raddr);
    panic_if(line == nullptr, "directory owner lost the line");
    // M -> S: push the dirty data down to the (inclusive) LLC copy.
    Cache &home_cache = llcRedPartitions_[homeBank(raddr)];
    Cache::Line *home = home_cache.probe(raddr);
    panic_if(home == nullptr, "inclusion violated for redundancy line");
    std::memcpy(home_cache.dataOf(*home),
                ctrlCaches_[owner].dataOf(*line), kLineBytes);
    home->dirty = home->dirty || line->dirty;
    line->dirty = false;
    it->second.owner = -1;
    stats_.redundancyInvalidations++;
}

void
TvarakEngine::invalidateOtherSharers(std::size_t ctrl, Addr raddr)
{
    DirEntry &e = directory_[raddr];
    for (std::size_t c = 0; c < banks_; c++) {
        if (c == ctrl || !(e.sharers & (1u << c)))
            continue;
        // Owned copies were recalled before we got here.
        ctrlCaches_[c].invalidate(raddr);
        stats_.redundancyInvalidations++;
    }
    e.sharers = 1u << ctrl;
    e.owner = static_cast<std::int8_t>(ctrl);
}

void
TvarakEngine::handleCtrlVictim(std::size_t ctrl, const Cache::Victim &victim)
{
    if (!victim.valid)
        return;
    auto it = directory_.find(victim.addr);
    if (it != directory_.end()) {
        it->second.sharers &= ~(1u << ctrl);
        if (it->second.owner == static_cast<std::int8_t>(ctrl))
            it->second.owner = -1;
        if (it->second.sharers == 0)
            directory_.erase(it);
    }
    if (victim.dirty) {
        Cache &home_cache = llcRedPartitions_[homeBank(victim.addr)];
        Cache::Line *home = home_cache.probe(victim.addr);
        panic_if(home == nullptr,
                 "inclusion violated on controller eviction");
        std::memcpy(home_cache.dataOf(*home), victim.data.data(),
                    kLineBytes);
        home->dirty = true;
    }
}

void
TvarakEngine::handleLlcRedVictim(const Cache::Victim &victim)
{
    if (!victim.valid)
        return;
    auto data = victim.data;
    bool dirty = victim.dirty;
    // Back-invalidate controller copies (inclusive hierarchy); a dirty
    // owner copy supersedes the LLC data.
    auto it = directory_.find(victim.addr);
    if (it != directory_.end()) {
        if (it->second.owner >= 0) {
            auto owner = static_cast<std::size_t>(it->second.owner);
            Cache::Line *line = ctrlCaches_[owner].probe(victim.addr);
            panic_if(line == nullptr, "directory owner lost the line");
            std::memcpy(data.data(), ctrlCaches_[owner].dataOf(*line),
                        kLineBytes);
            dirty = dirty || line->dirty;
        }
        for (std::size_t c = 0; c < banks_; c++) {
            if (it->second.sharers & (1u << c)) {
                ctrlCaches_[c].invalidate(victim.addr);
                stats_.redundancyInvalidations++;
            }
        }
        directory_.erase(it);
    }
    if (dirty) {
        if (nvm_.writeBlocked(victim.addr)) {
            stats_.degradedWritesDropped++;
            return;
        }
        classifyRedNvmAccess(victim.addr);
        nvm_.access(victim.addr, true, data.data(), true);
    }
}

Cache::Line *
TvarakEngine::fillRedLine(std::size_t ctrl, Addr raddr,
                          const std::uint8_t *data)
{
    // Fill the LLC partition first (inclusive backing)...
    Cache &home = llcRedPartitions_[homeBank(raddr)];
    if (home.probe(raddr) == nullptr) {
        Cache::Victim victim;
        Cache::Line &l = home.insert(raddr, victim);
        handleLlcRedVictim(victim);
        std::memcpy(home.dataOf(l), data, kLineBytes);
    }
    // ...then the on-controller cache.
    Cache::Victim victim;
    Cache::Line &line = ctrlCaches_[ctrl].insert(raddr, victim);
    handleCtrlVictim(ctrl, victim);
    std::memcpy(ctrlCaches_[ctrl].dataOf(line), data, kLineBytes);
    DirEntry &e = directory_[raddr];
    e.sharers |= 1u << ctrl;
    return &line;
}

Cycles
TvarakEngine::redLineAccess(std::size_t ctrl, Addr raddr, bool write,
                            std::uint8_t *buf, bool demand)
{
    if (!params_.useRedundancyCaching)
        return redLineAccessUncached(raddr, write, buf, demand);

    Cycles cycles = params_.cacheLatency;
    stats_.tvarakCacheAccesses++;
    Cache::Line *line = ctrlCaches_[ctrl].probe(raddr);
    if (line != nullptr) {
        stats_.tvarakEnergy += params_.cacheHitEnergy;
    } else {
        stats_.tvarakEnergy += params_.cacheMissEnergy;
        stats_.tvarakCacheMisses++;

        // Probe the (inclusive) LLC way-partition at the home bank,
        // recalling any dirty copy from another controller first.
        recallOwner(raddr, ctrl);
        stats_.llcAccesses++;
        cycles += cfg_.llcBank.latency;
        Cache &home = llcRedPartitions_[homeBank(raddr)];
        Cache::Line *home_line = home.probe(raddr);
        std::uint8_t fill[kLineBytes];
        if (home_line != nullptr) {
            stats_.llcEnergy += cfg_.llcBank.hitEnergy;
            home.touch(*home_line);
            std::memcpy(fill, home.dataOf(*home_line), kLineBytes);
        } else {
            stats_.llcEnergy += cfg_.llcBank.missEnergy;
            stats_.llcMisses++;
            classifyRedNvmAccess(raddr);
            Cycles lat = nvm_.access(raddr, false, fill, true);
            cycles += lat;
        }
        line = fillRedLine(ctrl, raddr, fill);
    }
    ctrlCaches_[ctrl].touch(*line);

    if (write) {
        recallOwner(raddr, ctrl);
        invalidateOtherSharers(ctrl, raddr);
        std::memcpy(ctrlCaches_[ctrl].dataOf(*line), buf, kLineBytes);
        line->dirty = true;
    } else {
        std::memcpy(buf, ctrlCaches_[ctrl].dataOf(*line), kLineBytes);
    }
    return demand ? cycles : 0;
}

void
TvarakEngine::peekRedLine(Addr raddr, std::uint8_t *out)
{
    if (params_.useRedundancyCaching) {
        auto it = directory_.find(raddr);
        if (it != directory_.end() && it->second.owner >= 0) {
            auto owner = static_cast<std::size_t>(it->second.owner);
            Cache::Line *line = ctrlCaches_[owner].probe(raddr);
            panic_if(line == nullptr, "directory owner lost the line");
            std::memcpy(out, ctrlCaches_[owner].dataOf(*line),
                        kLineBytes);
            return;
        }
        Cache &home_cache = llcRedPartitions_[homeBank(raddr)];
        if (Cache::Line *home = home_cache.probe(raddr)) {
            std::memcpy(out, home_cache.dataOf(*home), kLineBytes);
            return;
        }
    }
    nvm_.rawRead(raddr, out, kLineBytes);
}

//
// Verification (NVM -> LLC fills)
//

Cycles
TvarakEngine::verifyFill(std::size_t bank, Addr nvmAddr,
                         std::uint8_t *lineData)
{
    if (verificationBlocked(nvmAddr)) {
        // The checksum storage died with its DIMM; until the rebuild
        // sweep recomputes it there is nothing to verify against.
        stats_.degradedRedSkips++;
        return params_.rangeMatchLatency;
    }
    Cycles cycles = params_.rangeMatchLatency;
    stats_.readVerifications++;

    if (!params_.useDaxClChecksums)
        return cycles + naivePageChecksumVerify(bank, nvmAddr, lineData);

    Addr csum_line = layout_.daxClCsumLine(nvmAddr);
    std::uint8_t buf[kLineBytes];
    cycles += redLineAccess(bank, csum_line, false, buf, true);
    std::size_t idx = static_cast<std::size_t>(
        layout_.daxClCsumAddr(nvmAddr) - csum_line);
    std::uint64_t expected = load64(buf + idx);
    cycles += params_.computeLatency;

    if (lineChecksum(lineData) != expected) {
        stats_.corruptionsDetected++;
        auto corrected = recoverLine(nvmAddr);
        std::memcpy(lineData, corrected.data(), kLineBytes);
        if (onRecovery)
            onRecovery(nvmAddr);
    }
    return cycles;
}

std::uint64_t
TvarakEngine::pageChecksumWith(Addr nvmAddr, const std::uint8_t *newData,
                               bool chargeAccesses)
{
    Addr page = pageBase(nvmAddr);
    std::uint8_t content[kPageBytes];
    nvm_.rawRead(page, content, kPageBytes);
    std::memcpy(content + lineInPage(nvmAddr) * kLineBytes, newData,
                kLineBytes);
    if (chargeAccesses) {
        // The accessed line itself is already at hand; the other 63
        // lines are real NVM reads (the naive controller's burden).
        for (std::size_t l = 0; l < kLinesPerPage; l++) {
            if (l == lineInPage(nvmAddr))
                continue;
            nvm_.charge(page + l * kLineBytes, false, true);
        }
    }
    return pageChecksum(content);
}

Cycles
TvarakEngine::naivePageChecksumVerify(std::size_t bank, Addr nvmAddr,
                                      std::uint8_t *lineData)
{
    // The 63 sibling-line reads pipeline behind the demand read: charge
    // one extra device latency on the demand path, full occupancy.
    Cycles cycles = nvm_.readLatency();
    std::uint64_t actual = pageChecksumWith(nvmAddr, lineData, true);
    cycles += kLinesPerPage * params_.computeLatency;

    Addr entry = layout_.pageCsumAddr(nvmAddr);
    Addr csum_line = lineBase(entry);
    std::uint8_t buf[kLineBytes];
    cycles += redLineAccess(bank, csum_line, false, buf, true);
    std::uint64_t expected =
        load64(buf + static_cast<std::size_t>(entry - csum_line));

    if (actual != expected) {
        stats_.corruptionsDetected++;
        auto corrected = recoverLine(nvmAddr);
        std::memcpy(lineData, corrected.data(), kLineBytes);
        if (onRecovery)
            onRecovery(nvmAddr);
    }
    return cycles;
}

//
// Updates (LLC -> NVM writebacks)
//

std::optional<Addr>
TvarakEngine::captureDiff(std::size_t bank, Addr nvmAddr)
{
    if (!params_.useDataDiffs)
        return std::nullopt;

    stats_.diffCaptures++;
    // The diff partition is LLC ways: charge an LLC access.
    stats_.llcAccesses++;
    Cache &part = diffPartitions_[bank];
    if (Cache::Line *line = part.probe(nvmAddr)) {
        stats_.llcEnergy += cfg_.llcBank.hitEnergy;
        part.touch(*line);
        return std::nullopt;
    }
    stats_.llcEnergy += cfg_.llcBank.missEnergy;
    Cache::Victim victim;
    part.insert(nvmAddr, victim);
    if (victim.valid) {
        stats_.diffEvictions++;
        return victim.addr;
    }
    return std::nullopt;
}

bool
TvarakEngine::hasDiff(std::size_t bank, Addr nvmAddr) const
{
    return params_.useDataDiffs &&
        diffPartitions_[bank].probe(nvmAddr) != nullptr;
}

void
TvarakEngine::dropDiff(std::size_t bank, Addr nvmAddr)
{
    if (params_.useDataDiffs)
        diffPartitions_[bank].invalidate(nvmAddr);
}

void
TvarakEngine::updateRedundancy(std::size_t bank, Addr nvmAddr,
                               const std::uint8_t *newData,
                               DiffSource source)
{
    stats_.redundancyUpdates++;

    // The old-line media read below is a near-guaranteed host cache
    // miss into the big media array; start it now so it overlaps the
    // diff-source bookkeeping (host-side only, no simulated effect).
    nvm_.prefetchRaw(nvmAddr);

    // The diff value is always (old media content XOR new data); only
    // *where it comes from* differs between configurations, and that
    // is what the timing model charges for.
    switch (source) {
      case DiffSource::Stored: {
        Cache &part = diffPartitions_[bank];
        if (part.probe(nvmAddr) != nullptr) {
            stats_.llcAccesses++;
            stats_.llcEnergy += cfg_.llcBank.hitEnergy;
            part.invalidate(nvmAddr);
        } else {
            // Diffs enabled but this line's diff is gone (races with
            // map-time invalidation); model the old-data re-read.
            nvm_.charge(nvmAddr, false, false);
        }
        break;
      }
      case DiffSource::EvictedDiff:
        // Handed to us by captureDiff's eviction; already accounted.
        break;
      case DiffSource::None:
        // No diff storage (diffs disabled / exclusive LLC): the old
        // data must be re-read from NVM at writeback time.
        nvm_.charge(nvmAddr, false, false);
        break;
    }
    std::uint8_t old[kLineBytes];
    bool degraded = nvm_.anyDegraded();
    if (degraded && nvm_.lineDegraded(nvmAddr)) {
        // The old value no longer exists at rest; what reconstruction
        // *would have returned* plays its role, so that the RAID-5
        // degraded-write chain parity' = parity ^ old ^ new keeps
        // reconstructing the newest acknowledged value even though the
        // data write itself will be dropped.
        reconstructFromParity(nvmAddr, old);
    } else {
        nvm_.rawRead(nvmAddr, old, kLineBytes);
    }
    // One fused kernel pass over the line computes the diff, its
    // nonzero-ness, and (when this design stores DAX-CL checksums) the
    // new line's widened checksum.
    bool skip_red = degraded && verificationBlocked(nvmAddr);
    bool want_csum = !skip_red && params_.useDaxClChecksums;
    std::uint8_t diff[kLineBytes];
    std::uint64_t csum = 0;
    kernels::KernelSequence seq;
    seq.captureDiff(diff, old, newData);
    if (want_csum)
        seq.checksum(&csum, kDaxClCsumTag);
    bool diff_nonzero = seq.run();

    // Checksum update.
    if (skip_red) {
        stats_.degradedRedSkips++;  // rebuild will recompute the slot
    } else if (params_.useDaxClChecksums) {
        Addr csum_line = layout_.daxClCsumLine(nvmAddr);
        std::uint8_t buf[kLineBytes];
        redLineAccess(bank, csum_line, false, buf, false);
        std::size_t idx = static_cast<std::size_t>(
            layout_.daxClCsumAddr(nvmAddr) - csum_line);
        store64(buf + idx, csum);
        redLineAccess(bank, csum_line, true, buf, false);
    } else {
        naivePageChecksumUpdate(bank, nvmAddr, newData);
    }

    // Parity update: parity ^= diff preserves the stripe invariant
    // (parity == XOR of the stripe's data pages at rest) across the
    // caller's subsequent data write.
    if (diff_nonzero) {
        std::size_t data_idx =
            rs_ ? layout_.dataMemberIndexOf(nvmAddr) : 0;
        for (std::size_t role = 0; role < layout_.parityCount();
             role++) {
            Addr parity_line = layout_.parityLineOf(nvmAddr, role);
            if (degraded && nvm_.lineDegraded(parity_line)) {
                // Parity died with its DIMM; its whole stripe is
                // readable directly, and the rebuild sweep recomputes
                // the line.
                stats_.degradedRedSkips++;
                continue;
            }
            std::uint8_t pbuf[kLineBytes];
            redLineAccess(bank, parity_line, false, pbuf, false);
            if (rs_)
                rs_->updateParity(pbuf, diff, role, data_idx);
            else
                xorLine(pbuf, diff);
            redLineAccess(bank, parity_line, true, pbuf, false);
        }
    }
}

void
TvarakEngine::naivePageChecksumUpdate(std::size_t bank, Addr nvmAddr,
                                      const std::uint8_t *newData)
{
    std::uint64_t csum = pageChecksumWith(nvmAddr, newData, true);
    Addr entry = layout_.pageCsumAddr(nvmAddr);
    Addr csum_line = lineBase(entry);
    std::uint8_t buf[kLineBytes];
    redLineAccess(bank, csum_line, false, buf, false);
    store64(buf + static_cast<std::size_t>(entry - csum_line), csum);
    redLineAccess(bank, csum_line, true, buf, false);
}

//
// Recovery
//

std::array<std::uint8_t, kLineBytes>
TvarakEngine::recoverLine(Addr nvmAddr, bool verifyChecksum)
{
    Addr line_addr = lineBase(nvmAddr);
    stats_.recoveries++;

    bool check = params_.useDaxClChecksums && verifyChecksum;
    std::uint64_t expected = 0;
    if (check) {
        Addr csum_line = layout_.daxClCsumLine(line_addr);
        std::uint8_t buf[kLineBytes];
        peekRedLine(csum_line, buf);
        expected = load64(buf + static_cast<std::size_t>(
                              layout_.daxClCsumAddr(line_addr) - csum_line));
    }

    // First try a plain media re-read: a misdirected *read* leaves the
    // media intact, so the retry already yields the correct line.
    std::array<std::uint8_t, kLineBytes> candidate;
    nvm_.rawRead(line_addr, candidate.data(), kLineBytes);
    if (check && lineChecksum(candidate.data()) == expected)
        return candidate;

    // Rebuild from parity (the degraded read).
    bool decoded = reconstructFromParity(line_addr, candidate.data());
    if (check && decoded) {
        panic_if(lineChecksum(candidate.data()) != expected,
                 "unrecoverable corruption at %llx (double fault?)",
                 static_cast<unsigned long long>(line_addr));
    }
    // Repair the media so subsequent reads are clean; a failed decode
    // leaves poison there, so the loss stays detected, never stale.
    nvm_.rawWrite(line_addr, candidate.data(), kLineBytes);
    return candidate;
}

bool
TvarakEngine::reconstructFromParity(Addr nvmAddr, std::uint8_t *out)
{
    Addr line_addr = lineBase(nvmAddr);
    if (rs_)
        return reconstructRs(line_addr, out);
    panic_if(layout_.isParityPage(line_addr),
             "parity lines are recomputed from members, not from parity");
    std::vector<Addr> pages;
    layout_.stripeDataPages(line_addr, pages);
    std::size_t offset = lineInPage(line_addr) * kLineBytes;
    // Erasure overflow is known at decode time: single parity needs
    // every other stripe member, so a second dead member makes the
    // stripe undecodable. Loud poison, never an XOR of garbage.
    if (nvm_.anyDegraded()) {
        bool overflow =
            nvm_.lineDegraded(layout_.parityLineOf(line_addr));
        for (Addr page : pages) {
            if (page != pageBase(line_addr))
                overflow = overflow ||
                    nvm_.lineDegraded(page + offset);
        }
        if (overflow) {
            std::memset(out, NvmDimm::kPoisonByte, kLineBytes);
            return false;
        }
    }
    // The authoritative parity line (which may be dirty in the
    // redundancy caches) XOR the sibling lines at rest.
    peekRedLine(layout_.parityLineOf(line_addr), out);
    for (Addr page : pages) {
        if (page == pageBase(line_addr))
            continue;
        std::uint8_t sib[kLineBytes];
        nvm_.rawRead(page + offset, sib, kLineBytes);
        xorLine(out, sib);
    }
    return true;
}

bool
TvarakEngine::reconstructRs(Addr lineAddr, std::uint8_t *out)
{
    const std::size_t n = layout_.dataCount();
    const std::size_t k = layout_.parityCount();
    std::size_t offset = lineInPage(lineAddr) * kLineBytes;
    std::vector<Addr> pages;
    layout_.stripeDataPages(lineAddr, pages);  // coding-index order

    std::vector<std::array<std::uint8_t, kLineBytes>> bufs(n + k);
    std::vector<std::uint8_t *> ptrs(n + k);
    bool present[255];
    std::size_t target = n + k;
    // The target itself is always treated as an erasure, even when
    // its media is readable: recoverLine reconstructs lines whose
    // *content* is corrupt, and a decode that trusted the target's
    // bytes would hand them straight back.
    for (std::size_t i = 0; i < n; i++) {
        Addr member = pages[i] + offset;
        ptrs[i] = bufs[i].data();
        present[i] = member != lineAddr && !nvm_.lineDegraded(member);
        if (present[i])
            nvm_.rawRead(member, ptrs[i], kLineBytes);
        if (member == lineAddr)
            target = i;
    }
    for (std::size_t j = 0; j < k; j++) {
        Addr member = layout_.parityLineOf(lineAddr, j);
        ptrs[n + j] = bufs[n + j].data();
        present[n + j] =
            member != lineAddr && !nvm_.lineDegraded(member);
        if (present[n + j]) {
            // Authoritative parity: may be dirty in the redundancy
            // caches, so go through the coherent peek.
            peekRedLine(member, ptrs[n + j]);
        }
        if (member == lineAddr)
            target = n + j;
    }
    panic_if(target == n + k, "reconstructRs: %llx not in its stripe",
             static_cast<unsigned long long>(lineAddr));
    if (!rs_->decode(ptrs.data(), present)) {
        // More members dead than parity can absorb: the stripe is
        // lost. Poison, never stale bytes — downstream checksum
        // verification turns this into a *detected* loss.
        std::memset(out, NvmDimm::kPoisonByte, kLineBytes);
        return false;
    }
    std::memcpy(out, ptrs[target], kLineBytes);
    return true;
}

//
// Whole-DIMM failure support
//

void
TvarakEngine::invalidateRedLinesOfDimm(std::size_t dimm)
{
    std::vector<Addr> doomed;
    auto collect = [&](Cache::Line &line) {
        if (nvm_.dimmOf(line.addr) == dimm)
            doomed.push_back(line.addr);
    };
    for (auto &c : ctrlCaches_)
        c.forEachLine(collect);
    for (auto &p : llcRedPartitions_)
        p.forEachLine(collect);
    for (Addr a : doomed) {
        for (auto &c : ctrlCaches_)
            c.invalidate(a);
        llcRedPartitions_[homeBank(a)].invalidate(a);
        directory_.erase(a);
    }
}

bool
TvarakEngine::verificationBlocked(Addr nvmAddr) const
{
    if (!nvm_.anyDegraded())
        return false;
    if (params_.useDaxClChecksums)
        return nvm_.lineDegraded(layout_.daxClCsumLine(nvmAddr));
    // Naive mode re-reads the whole page: the page shares one DIMM, so
    // its last line (highest media address) degrades first under the
    // monotonic rebuild watermark.
    Addr page = pageBase(nvmAddr);
    return nvm_.lineDegraded(lineBase(layout_.pageCsumAddr(nvmAddr))) ||
        nvm_.lineDegraded(page + (kLinesPerPage - 1) * kLineBytes);
}

Cycles
TvarakEngine::verifyReconstructed(std::size_t bank, Addr nvmAddr,
                                  std::uint8_t *lineData)
{
    // Naive page-checksum mode can never verify a degraded line: the
    // line's own page is (by definition) partially lost, and the page
    // checksum needs all of it.
    if (!params_.useDaxClChecksums || verificationBlocked(nvmAddr)) {
        stats_.degradedRedSkips++;
        return params_.rangeMatchLatency;
    }
    Cycles cycles = params_.rangeMatchLatency;
    stats_.readVerifications++;
    Addr csum_line = layout_.daxClCsumLine(nvmAddr);
    std::uint8_t buf[kLineBytes];
    cycles += redLineAccess(bank, csum_line, false, buf, true);
    std::uint64_t expected = load64(
        buf + static_cast<std::size_t>(layout_.daxClCsumAddr(nvmAddr) -
                                       csum_line));
    cycles += params_.computeLatency;
    if (lineChecksum(lineData) == expected)
        return cycles;
    // A reconstruction that fails its checksum means a second fault
    // hit the stripe while the DIMM was down: with the redundancy
    // budget exhausted the line is lost, but *detectably* so — serve
    // loud poison, never the silently-wrong reconstruction.
    stats_.corruptionsDetected++;
    std::memset(lineData, NvmDimm::kPoisonByte, kLineBytes);
    return cycles;
}

//
// Maintenance
//

void
TvarakEngine::flushRedundancy()
{
    // Recall every owned line, then write back dirty LLC-partition
    // lines. Controller caches become clean copies.
    for (std::size_t c = 0; c < banks_; c++) {
        ctrlCaches_[c].forEachLine([&](Cache::Line &line) {
            if (!line.dirty)
                return;
            Cache &home_cache = llcRedPartitions_[homeBank(line.addr)];
            Cache::Line *home = home_cache.probe(line.addr);
            panic_if(home == nullptr, "inclusion violated in flush");
            std::memcpy(home_cache.dataOf(*home),
                        ctrlCaches_[c].dataOf(line), kLineBytes);
            home->dirty = true;
            line.dirty = false;
            auto it = directory_.find(line.addr);
            if (it != directory_.end() &&
                it->second.owner == static_cast<std::int8_t>(c)) {
                it->second.owner = -1;
            }
        });
    }
    for (auto &part : llcRedPartitions_) {
        part.forEachLine([&](Cache::Line &line) {
            if (!line.dirty)
                return;
            if (nvm_.writeBlocked(line.addr)) {
                stats_.degradedWritesDropped++;
            } else {
                classifyRedNvmAccess(line.addr);
                nvm_.access(line.addr, true, part.dataOf(line), true);
            }
            line.dirty = false;
        });
    }
}

void
TvarakEngine::dropCleanState()
{
    auto assert_clean = [](Cache::Line &line) {
        panic_if(line.dirty, "dropCleanState with dirty redundancy");
    };
    for (auto &c : ctrlCaches_) {
        c.forEachLine(assert_clean);
        c.reset();
    }
    for (auto &p : llcRedPartitions_) {
        p.forEachLine(assert_clean);
        p.reset();
    }
    for (auto &p : diffPartitions_)
        p.reset();
    directory_.clear();
}

void
TvarakEngine::initDaxClChecksums(Addr nvmPage)
{
    panic_if(pageOffset(nvmPage) != 0, "unaligned page");
    // Software (the file system) writes these at dax-map time; the
    // cost is part of mapping, not of steady-state execution, so the
    // writes are untimed. Stale cached copies of the affected checksum
    // lines must not survive.
    std::uint8_t page[kPageBytes];
    nvm_.rawRead(nvmPage, page, kPageBytes);
    for (std::size_t l = 0; l < kLinesPerPage; l++) {
        Addr data_line = nvmPage + l * kLineBytes;
        Addr entry = layout_.daxClCsumAddr(data_line);
        std::uint64_t csum = lineChecksum(page + l * kLineBytes);
        std::uint8_t bytes[kChecksumBytes];
        store64(bytes, csum);
        nvm_.rawWrite(entry, bytes, kChecksumBytes);
    }
    for (std::size_t l = 0; l < kLinesPerPage; l += kChecksumsPerLine) {
        Addr csum_line = layout_.daxClCsumLine(nvmPage + l * kLineBytes);
        for (std::size_t c = 0; c < banks_; c++)
            ctrlCaches_[c].invalidate(csum_line);
        llcRedPartitions_[homeBank(csum_line)].invalidate(csum_line);
        directory_.erase(csum_line);
    }
}

void
TvarakEngine::clearDaxClChecksums(Addr nvmPage)
{
    panic_if(pageOffset(nvmPage) != 0, "unaligned page");
    std::uint8_t zeros[kChecksumBytes] = {};
    for (std::size_t l = 0; l < kLinesPerPage; l++) {
        Addr entry = layout_.daxClCsumAddr(nvmPage + l * kLineBytes);
        nvm_.rawWrite(entry, zeros, kChecksumBytes);
    }
    for (std::size_t l = 0; l < kLinesPerPage; l += kChecksumsPerLine) {
        Addr csum_line = layout_.daxClCsumLine(nvmPage + l * kLineBytes);
        for (std::size_t c = 0; c < banks_; c++)
            ctrlCaches_[c].invalidate(csum_line);
        llcRedPartitions_[homeBank(csum_line)].invalidate(csum_line);
        directory_.erase(csum_line);
    }
}

}  // namespace tvarak
