/**
 * @file
 * Access-trace record & replay.
 *
 * The demand stream reaching MemorySystem is design-independent: the
 * application issues the same reads, writes, compute charges and
 * commit points under Baseline, TVARAK and both TxB schemes (only the
 * *redundancy machinery's* accesses differ, and those are derived from
 * the demand stream). Recording that stream once under Baseline and
 * replaying it per design therefore reproduces every design's Stats
 * bit-identically while skipping the application logic — see
 * DESIGN.md §8 for the full argument.
 *
 * Pieces:
 *  - TraceData       an in-memory trace (header + encoded records),
 *                    loadable/savable in the format of format.hh.
 *  - TraceWriter     a TraceSink that delta/varint-encodes events.
 *  - TraceCursor     sequential decoder over a TraceData.
 *  - TraceReplayWorkload  a Workload that re-issues the recorded
 *                    global event stream in order, so replay plugs
 *                    into runExperiment and the parallel engine.
 *  - recordExperiment / replayExperiment  the one-call entry points.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "redundancy/scheme.hh"
#include "trace/format.hh"
#include "trace/sink.hh"

namespace tvarak::trace {

/** An in-memory access trace: self-contained header + record bytes. */
struct TraceData {
    std::uint32_t version = kTraceVersion;
    DesignKind recordedDesign{};  //!< design the stream was captured under
    std::uint64_t configFingerprint = 0;  //!< FNV-1a over the cfg blob
    std::uint32_t threads = 1;            //!< max recorded tid + 1
    std::string workloadName;
    SimConfig cfg;                        //!< recorded machine config
    std::uint64_t eventCount = 0;
    std::vector<std::uint8_t> records;

    /** @return false (with a warn) on I/O failure. */
    bool save(const std::string &path) const;
    /** @return nullptr (with a warn) on I/O or format error. */
    static std::shared_ptr<TraceData> load(const std::string &path);
};

/** Serialize @p cfg to the fixed-field-order blob fingerprints cover. */
std::vector<std::uint8_t> serializeConfig(const SimConfig &cfg);
/** Inverse of serializeConfig. @return false on a short/long blob. */
bool deserializeConfig(const std::vector<std::uint8_t> &blob,
                       SimConfig &cfg);

/** TraceSink that encodes events into a TraceData. */
class TraceWriter final : public TraceSink
{
  public:
    TraceWriter(const SimConfig &cfg, DesignKind design,
                std::string workloadName);

    void onRead(int tid, Addr vaddr, std::size_t len) override;
    void onWrite(int tid, Addr vaddr, const void *buf,
                 std::size_t len) override;
    void onCompute(int tid, Cycles cycles) override;
    void onComputeChecksum(int tid, std::size_t bytes) override;
    void onDropCaches() override;
    void onCommit(int tid, const std::vector<DirtyRange> &ranges,
                  bool runScheme, bool countsTxCommit) override;
    void onFsCreate(const std::string &name, std::size_t bytes,
                    int fd) override;
    void onFsDaxMap(int fd) override;
    void onFsDaxUnmap(int fd) override;
    void onFsRemove(int fd) override;
    void onFsPwrite(int tid, int fd, std::size_t offset, const void *buf,
                    std::size_t len) override;
    void onFsPread(int tid, int fd, std::size_t offset,
                   std::size_t len) override;
    void onMarker(std::uint64_t subtype) override;

    /** Seal and hand over the trace (the writer is spent after). */
    std::shared_ptr<TraceData> finish();

  private:
    void putHead(Op op, int tid);
    /** Per-tid delta cursor; encode vaddr, advance cursor to end. */
    void putAddr(int tid, Addr vaddr, std::size_t len);
    Addr &cursorOf(int tid);

    std::shared_ptr<TraceData> data_;
    std::vector<Addr> lastVaddr_;
    int maxTid_ = 0;
};

/** One decoded trace event (see format.hh for field applicability). */
struct TraceEvent {
    Op op = Op::Marker;
    int tid = 0;
    Addr vaddr = 0;
    std::size_t len = 0;
    Cycles cycles = 0;                 //!< Compute
    std::size_t bytes = 0;             //!< ComputeChecksum / FsCreate
    const std::uint8_t *payload = nullptr;  //!< Write / FsPwrite
    bool runScheme = false;            //!< Commit
    bool countsTxCommit = false;       //!< Commit
    std::vector<DirtyRange> ranges;    //!< Commit
    int fd = -1;                       //!< Fs*
    std::size_t offset = 0;            //!< FsPwrite / FsPread
    std::string name;                  //!< FsCreate
    std::uint64_t subtype = 0;         //!< Marker
};

/** Sequential decoder. The cursor borrows the TraceData's buffer;
 *  payload pointers are valid while the TraceData lives. */
class TraceCursor
{
  public:
    explicit TraceCursor(const TraceData &trace);

    /** Decode the next event into @p e (reusing its vectors).
     *  @return false at end of stream. */
    bool next(TraceEvent &e);

  private:
    const std::uint8_t *p_;
    const std::uint8_t *end_;
    std::vector<Addr> lastVaddr_;
};

/**
 * Replays a recorded event stream against a fresh machine. A single
 * workload replays the *global* interleaved stream (issuing each event
 * under its recorded tid), so thread interleaving — and therefore every
 * cache and DIMM interaction — matches the recording exactly.
 *
 * setup() replays through the ResetStats marker (the recorded
 * pre-measurement phase); step() replays the measured phase in slices.
 * The recorded run's final flushAll is not in the trace: the runner
 * re-executes it natively over bit-identical machine state.
 */
class TraceReplayWorkload final : public Workload
{
  public:
    TraceReplayWorkload(std::shared_ptr<const TraceData> trace,
                        MemorySystem &mem, DaxFs &fs);

    void setup() override;
    bool step() override;
    int tid() const override { return 0; }
    std::string name() const override { return trace_->workloadName; }

  private:
    /** Re-issue one event. @return false for the ResetStats marker. */
    bool apply(const TraceEvent &e);

    std::shared_ptr<const TraceData> trace_;
    MemorySystem &mem_;
    DaxFs &fs_;
    TraceCursor cursor_;
    TraceEvent event_;
    std::unique_ptr<RedundancyScheme> scheme_;
    std::vector<std::uint8_t> scratch_;  //!< read/pread target
    bool exhausted_ = false;
};

/** Factory wrapping @p trace for runExperiment / the parallel engine.
 *  The TraceData is shared immutably across concurrent replays. */
WorkloadFactory makeReplayFactory(std::shared_ptr<const TraceData> trace);

struct RecordResult {
    RunResult result;                  //!< the recording run itself
    std::shared_ptr<TraceData> trace;
};

/** Run @p make under @p design with a recorder attached. */
RecordResult recordExperiment(const SimConfig &cfg, DesignKind design,
                              const WorkloadFactory &make,
                              const std::string &workloadName);

/** Replay @p trace under @p design (on the trace's own config). */
RunResult replayExperiment(std::shared_ptr<const TraceData> trace,
                           DesignKind design);

/** As above, for any registered Design (variants included). The
 *  trace header still stores only the design's DesignKind. */
RecordResult recordExperiment(const SimConfig &cfg, const Design &design,
                              const WorkloadFactory &make,
                              const std::string &workloadName);
RunResult replayExperiment(std::shared_ptr<const TraceData> trace,
                           const Design &design);

}  // namespace tvarak::trace
