/**
 * @file
 * Versioned binary access-trace format.
 *
 * A trace file is:
 *
 *   header   magic (u64), format version (u32), recorded design (u32),
 *            config fingerprint (u64, FNV-1a over the serialized
 *            SimConfig), thread count (u32), workload name, the full
 *            serialized SimConfig (so a trace is self-contained), and
 *            the event count.
 *   records  delta/varint-encoded event stream (below).
 *
 * Every record starts with a head byte: op in the high nibble, tid in
 * the low nibble (0xF = escaped, varint tid follows). Lengths, cycle
 * counts and file descriptors are LEB128 varints; virtual addresses
 * are zigzag varint deltas against a per-thread cursor that advances
 * to (vaddr + len) after each record — sequential streams encode as
 * zero deltas. Write-class records carry their payload verbatim:
 * replay must reproduce checksum/parity *contents*, not just
 * addresses, for Stats to be bit-identical under every design.
 *
 * Op payloads (after the head byte):
 *
 *   Read             zig(dvaddr) len
 *   Write            zig(dvaddr) len payload[len]
 *   Compute          cycles
 *   ComputeChecksum  bytes
 *   DropCaches       -
 *   Commit           flags{runScheme,countsTxCommit} nranges ranges...
 *   FsCreate         namelen name[..] bytes fd
 *   FsDaxMap/FsDaxUnmap/FsRemove   fd
 *   FsPwrite         fd offset len payload[len]
 *   FsPread          fd offset len
 *   Marker           subtype
 *
 * Commit ranges (see redundancy/scheme.hh: DirtyRange) encode per
 * range: a flags byte (appData, has-object, has-checksum-slot,
 * object-is-own-line for the RawCoverage common case), zig(dvaddr),
 * len, then the optional object base/length and checksum-slot
 * address, all relative to the range's vaddr.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace tvarak::trace {

/** "TVRKTRC" + format generation, as a little-endian u64. */
constexpr std::uint64_t kTraceMagic = 0x0143'5254'4b52'5654ull;
constexpr std::uint32_t kTraceVersion = 1;

/** Event opcode (high nibble of the head byte). */
enum class Op : std::uint8_t {
    Read = 0,
    Write = 1,
    Compute = 2,
    ComputeChecksum = 3,
    DropCaches = 4,
    Commit = 5,
    FsCreate = 6,
    FsDaxMap = 7,
    FsDaxUnmap = 8,
    FsRemove = 9,
    FsPwrite = 10,
    FsPread = 11,
    Marker = 12,
};

/** Marker subtypes. */
constexpr std::uint64_t kMarkerResetStats = 0;

/** Head-byte tid escape: real tid follows as a varint. */
constexpr std::uint8_t kTidEscape = 0xF;

/** Commit-event flag bits. */
constexpr std::uint8_t kCommitRunScheme = 0x1;
constexpr std::uint8_t kCommitCountsTx = 0x2;

/** Commit-range flag bits. */
constexpr std::uint8_t kRangeAppData = 0x1;
constexpr std::uint8_t kRangeHasObj = 0x2;
constexpr std::uint8_t kRangeHasCsum = 0x4;
constexpr std::uint8_t kRangeObjIsOwnLine = 0x8;

/** LEB128 unsigned varint append. */
inline void
putVarint(std::vector<std::uint8_t> &buf, std::uint64_t value)
{
    while (value >= 0x80) {
        buf.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    buf.push_back(static_cast<std::uint8_t>(value));
}

/**
 * LEB128 unsigned varint decode; advances @p p (bounded by @p end).
 *
 * @return false if the encoding runs off @p end with its continuation
 * bit still set (truncation) or spans more than the ten groups a
 * 64-bit value can need (a corrupt continuation run). The shift is
 * capped below the word size, so garbage input is never undefined
 * behaviour.
 */
inline bool
getVarintChecked(const std::uint8_t *&p, const std::uint8_t *end,
                 std::uint64_t &value)
{
    value = 0;
    unsigned shift = 0;
    while (p < end) {
        std::uint8_t b = *p++;
        value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
        if ((b & 0x80) == 0)
            return true;
        shift += 7;
        if (shift >= 64)
            return false;
    }
    return false;
}

/** Unchecked decode for streams validated at load time. */
inline std::uint64_t
getVarint(const std::uint8_t *&p, const std::uint8_t *end)
{
    std::uint64_t value = 0;
    getVarintChecked(p, end, value);
    return value;
}

/** Zigzag-map a signed delta into an unsigned varint-friendly value. */
inline std::uint64_t
zigzag(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
        static_cast<std::uint64_t>(value >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
        -static_cast<std::int64_t>(value & 1);
}

/** FNV-1a over a byte blob (the config fingerprint). */
inline std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < len; i++) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace tvarak::trace
