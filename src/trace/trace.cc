#include "trace/trace.hh"

#include <bit>
#include <cstring>
#include <fstream>
#include <utility>

#include "redundancy/registry.hh"
#include "sim/log.hh"

namespace tvarak::trace {

namespace {

/** @name Raw little-endian scalar (de)serialization */
/**@{*/
void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; i++)
        buf.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; i++)
        buf.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void
putF64(std::vector<std::uint8_t> &buf, double v)
{
    putU64(buf, std::bit_cast<std::uint64_t>(v));
}

bool
getU32(const std::uint8_t *&p, const std::uint8_t *end, std::uint32_t &v)
{
    if (end - p < 4)
        return false;
    v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<std::uint32_t>(*p++) << (i * 8);
    return true;
}

bool
getU64(const std::uint8_t *&p, const std::uint8_t *end, std::uint64_t &v)
{
    if (end - p < 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<std::uint64_t>(*p++) << (i * 8);
    return true;
}

bool
getF64(const std::uint8_t *&p, const std::uint8_t *end, double &v)
{
    std::uint64_t raw = 0;
    if (!getU64(p, end, raw))
        return false;
    v = std::bit_cast<double>(raw);
    return true;
}
/**@}*/

void
putCacheParams(std::vector<std::uint8_t> &buf, const CacheParams &c)
{
    putU64(buf, c.sizeBytes);
    putU64(buf, c.ways);
    putU64(buf, c.latency);
    putF64(buf, c.hitEnergy);
    putF64(buf, c.missEnergy);
}

bool
getCacheParams(const std::uint8_t *&p, const std::uint8_t *end,
               CacheParams &c)
{
    std::uint64_t size = 0;
    std::uint64_t ways = 0;
    bool ok = getU64(p, end, size) && getU64(p, end, ways) &&
        getU64(p, end, c.latency) && getF64(p, end, c.hitEnergy) &&
        getF64(p, end, c.missEnergy);
    c.sizeBytes = size;
    c.ways = ways;
    return ok;
}

}  // namespace

/**
 * Structural validation of a record stream: every head byte carries a
 * known opcode, every varint is well formed (no truncated or runaway
 * continuation runs), every inline payload and name fits in the
 * remaining bytes, and the record count matches the header's event
 * count. Runs once at load so the replay-side cursor can decode
 * without per-field error handling; a trace that fails here is
 * rejected with a diagnostic instead of reaching the simulator.
 *
 * @return false with @p err set to a one-line reason.
 */
static bool
validateRecords(const TraceData &trace, std::string &err)
{
    const std::uint8_t *p = trace.records.data();
    const std::uint8_t *end = p + trace.records.size();
    std::uint64_t events = 0;
    std::uint64_t u = 0;

    auto fail = [&](const char *what) {
        err = "record " + std::to_string(events) + " (byte offset " +
            std::to_string(p - trace.records.data()) + "): " + what;
        return false;
    };

    while (p < end) {
        std::uint8_t head = *p++;
        auto op = static_cast<Op>(head >> 4);
        if ((head & 0xF) == kTidEscape && !getVarintChecked(p, end, u))
            return fail("bad escaped tid");
        switch (op) {
          case Op::Read:
            if (!getVarintChecked(p, end, u) ||
                !getVarintChecked(p, end, u)) {
                return fail("bad read address/length");
            }
            break;
          case Op::Write: {
            std::uint64_t len = 0;
            if (!getVarintChecked(p, end, u) ||
                !getVarintChecked(p, end, len)) {
                return fail("bad write address/length");
            }
            if (static_cast<std::uint64_t>(end - p) < len)
                return fail("truncated write payload");
            p += len;
            break;
          }
          case Op::Compute:
          case Op::ComputeChecksum:
          case Op::Marker:
            if (!getVarintChecked(p, end, u))
                return fail("bad scalar operand");
            break;
          case Op::DropCaches:
            break;
          case Op::Commit: {
            if (p >= end)
                return fail("truncated commit flags");
            p++;
            std::uint64_t n = 0;
            if (!getVarintChecked(p, end, n))
                return fail("bad commit range count");
            for (std::uint64_t i = 0; i < n; i++) {
                if (p >= end)
                    return fail("truncated commit range");
                std::uint8_t rf = *p++;
                if (!getVarintChecked(p, end, u) ||
                    !getVarintChecked(p, end, u)) {
                    return fail("bad commit range address/length");
                }
                if ((rf & kRangeHasObj) != 0 &&
                    (rf & kRangeObjIsOwnLine) == 0 &&
                    (!getVarintChecked(p, end, u) ||
                     !getVarintChecked(p, end, u))) {
                    return fail("bad commit range object");
                }
                if ((rf & kRangeHasCsum) != 0 &&
                    !getVarintChecked(p, end, u)) {
                    return fail("bad commit range checksum slot");
                }
            }
            break;
          }
          case Op::FsCreate: {
            std::uint64_t nameLen = 0;
            if (!getVarintChecked(p, end, nameLen))
                return fail("bad file name length");
            if (static_cast<std::uint64_t>(end - p) < nameLen)
                return fail("truncated file name");
            p += nameLen;
            if (!getVarintChecked(p, end, u) ||
                !getVarintChecked(p, end, u)) {
                return fail("bad file size/descriptor");
            }
            break;
          }
          case Op::FsDaxMap:
          case Op::FsDaxUnmap:
          case Op::FsRemove:
            if (!getVarintChecked(p, end, u))
                return fail("bad file descriptor");
            break;
          case Op::FsPwrite: {
            std::uint64_t len = 0;
            if (!getVarintChecked(p, end, u) ||
                !getVarintChecked(p, end, u) ||
                !getVarintChecked(p, end, len)) {
                return fail("bad pwrite operands");
            }
            if (static_cast<std::uint64_t>(end - p) < len)
                return fail("truncated pwrite payload");
            p += len;
            break;
          }
          case Op::FsPread:
            if (!getVarintChecked(p, end, u) ||
                !getVarintChecked(p, end, u) ||
                !getVarintChecked(p, end, u)) {
                return fail("bad pread operands");
            }
            break;
          default:
            return fail("unknown opcode");
        }
        events++;
    }
    if (events != trace.eventCount) {
        err = "event count mismatch (header says " +
            std::to_string(trace.eventCount) + ", stream holds " +
            std::to_string(events) + ")";
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
serializeConfig(const SimConfig &cfg)
{
    std::vector<std::uint8_t> buf;
    putU64(buf, cfg.cores);
    putF64(buf, cfg.coreGhz);
    putCacheParams(buf, cfg.l1);
    putCacheParams(buf, cfg.l2);
    putCacheParams(buf, cfg.llcBank);
    putU64(buf, cfg.llcBanks);
    putU64(buf, cfg.dram.sizeBytes);
    putF64(buf, cfg.dram.accessNs);
    putF64(buf, cfg.dram.accessEnergy);
    putU64(buf, cfg.nvm.dimms);
    putU64(buf, cfg.nvm.dimmBytes);
    putF64(buf, cfg.nvm.readNs);
    putF64(buf, cfg.nvm.writeNs);
    putF64(buf, cfg.nvm.readEnergy);
    putF64(buf, cfg.nvm.writeEnergy);
    putF64(buf, cfg.nvm.occupancyReadFactor);
    putF64(buf, cfg.nvm.occupancyWriteFactor);
    putU64(buf, cfg.tvarak.cacheBytes);
    putU64(buf, cfg.tvarak.cacheWays);
    putU64(buf, cfg.tvarak.cacheLatency);
    putF64(buf, cfg.tvarak.cacheHitEnergy);
    putF64(buf, cfg.tvarak.cacheMissEnergy);
    putU64(buf, cfg.tvarak.rangeMatchLatency);
    putU64(buf, cfg.tvarak.syncVerification ? 1 : 0);
    putU64(buf, cfg.tvarak.computeLatency);
    putU64(buf, cfg.tvarak.redundancyWays);
    putU64(buf, cfg.tvarak.diffWays);
    putU64(buf, cfg.tvarak.useDaxClChecksums ? 1 : 0);
    putU64(buf, cfg.tvarak.useRedundancyCaching ? 1 : 0);
    putU64(buf, cfg.tvarak.useDataDiffs ? 1 : 0);
    putU64(buf, cfg.storeIssueCycles);
    putF64(buf, cfg.storeMissLatencyFactor);
    putU64(buf, cfg.prefetchDegree);
    putF64(buf, cfg.swChecksumBytesPerCycle);
    // Optional tail, present only when non-default: traces of the
    // classic single-parity arrays stay byte-identical to the frozen
    // format (and old traces deserialize with the defaults).
    if (cfg.nvm.parityDimms != 1 || cfg.nvm.dimmsPerDomain != 1) {
        putU64(buf, cfg.nvm.parityDimms);
        putU64(buf, cfg.nvm.dimmsPerDomain);
    }
    return buf;
}

bool
deserializeConfig(const std::vector<std::uint8_t> &blob, SimConfig &cfg)
{
    const std::uint8_t *p = blob.data();
    const std::uint8_t *end = p + blob.size();
    std::uint64_t u = 0;
    bool ok = getU64(p, end, u);
    cfg.cores = u;
    ok = ok && getF64(p, end, cfg.coreGhz);
    ok = ok && getCacheParams(p, end, cfg.l1);
    ok = ok && getCacheParams(p, end, cfg.l2);
    ok = ok && getCacheParams(p, end, cfg.llcBank);
    ok = ok && getU64(p, end, u);
    cfg.llcBanks = u;
    ok = ok && getU64(p, end, u);
    cfg.dram.sizeBytes = u;
    ok = ok && getF64(p, end, cfg.dram.accessNs);
    ok = ok && getF64(p, end, cfg.dram.accessEnergy);
    ok = ok && getU64(p, end, u);
    cfg.nvm.dimms = u;
    ok = ok && getU64(p, end, u);
    cfg.nvm.dimmBytes = u;
    ok = ok && getF64(p, end, cfg.nvm.readNs);
    ok = ok && getF64(p, end, cfg.nvm.writeNs);
    ok = ok && getF64(p, end, cfg.nvm.readEnergy);
    ok = ok && getF64(p, end, cfg.nvm.writeEnergy);
    ok = ok && getF64(p, end, cfg.nvm.occupancyReadFactor);
    ok = ok && getF64(p, end, cfg.nvm.occupancyWriteFactor);
    ok = ok && getU64(p, end, u);
    cfg.tvarak.cacheBytes = u;
    ok = ok && getU64(p, end, u);
    cfg.tvarak.cacheWays = u;
    ok = ok && getU64(p, end, cfg.tvarak.cacheLatency);
    ok = ok && getF64(p, end, cfg.tvarak.cacheHitEnergy);
    ok = ok && getF64(p, end, cfg.tvarak.cacheMissEnergy);
    ok = ok && getU64(p, end, cfg.tvarak.rangeMatchLatency);
    ok = ok && getU64(p, end, u);
    cfg.tvarak.syncVerification = u != 0;
    ok = ok && getU64(p, end, cfg.tvarak.computeLatency);
    ok = ok && getU64(p, end, u);
    cfg.tvarak.redundancyWays = u;
    ok = ok && getU64(p, end, u);
    cfg.tvarak.diffWays = u;
    ok = ok && getU64(p, end, u);
    cfg.tvarak.useDaxClChecksums = u != 0;
    ok = ok && getU64(p, end, u);
    cfg.tvarak.useRedundancyCaching = u != 0;
    ok = ok && getU64(p, end, u);
    cfg.tvarak.useDataDiffs = u != 0;
    ok = ok && getU64(p, end, cfg.storeIssueCycles);
    ok = ok && getF64(p, end, cfg.storeMissLatencyFactor);
    ok = ok && getU64(p, end, u);
    cfg.prefetchDegree = u;
    ok = ok && getF64(p, end, cfg.swChecksumBytesPerCycle);
    // Optional n+k tail (absent in traces of single-parity arrays).
    cfg.nvm.parityDimms = 1;
    cfg.nvm.dimmsPerDomain = 1;
    if (ok && p != end) {
        ok = getU64(p, end, u);
        cfg.nvm.parityDimms = u;
        ok = ok && getU64(p, end, u);
        cfg.nvm.dimmsPerDomain = u;
    }
    return ok && p == end;
}

/*
 * TraceData file I/O.
 */

bool
TraceData::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        warn("trace: cannot open %s for writing", path.c_str());
        return false;
    }
    std::vector<std::uint8_t> hdr;
    std::vector<std::uint8_t> blob = serializeConfig(cfg);
    putU64(hdr, kTraceMagic);
    putU32(hdr, version);
    putU32(hdr, static_cast<std::uint32_t>(recordedDesign));
    putU64(hdr, configFingerprint);
    putU32(hdr, threads);
    putU32(hdr, static_cast<std::uint32_t>(workloadName.size()));
    hdr.insert(hdr.end(), workloadName.begin(), workloadName.end());
    putU32(hdr, static_cast<std::uint32_t>(blob.size()));
    hdr.insert(hdr.end(), blob.begin(), blob.end());
    putU64(hdr, eventCount);
    putU64(hdr, records.size());
    os.write(reinterpret_cast<const char *>(hdr.data()),
             static_cast<std::streamsize>(hdr.size()));
    os.write(reinterpret_cast<const char *>(records.data()),
             static_cast<std::streamsize>(records.size()));
    if (!os.good()) {
        warn("trace: short write to %s", path.c_str());
        return false;
    }
    return true;
}

std::shared_ptr<TraceData>
TraceData::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        warn("trace: cannot open %s", path.c_str());
        return nullptr;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    const std::uint8_t *p = bytes.data();
    const std::uint8_t *end = p + bytes.size();

    auto trace = std::make_shared<TraceData>();
    std::uint64_t magic = 0;
    std::uint32_t design = 0;
    std::uint32_t nameLen = 0;
    std::uint32_t cfgLen = 0;
    std::uint64_t recordsLen = 0;
    if (!getU64(p, end, magic) || magic != kTraceMagic) {
        warn("trace: %s: bad magic", path.c_str());
        return nullptr;
    }
    if (!getU32(p, end, trace->version) ||
        trace->version != kTraceVersion) {
        warn("trace: %s: unsupported version %u", path.c_str(),
             trace->version);
        return nullptr;
    }
    bool ok = getU32(p, end, design) &&
        getU64(p, end, trace->configFingerprint) &&
        getU32(p, end, trace->threads) && getU32(p, end, nameLen);
    if (!ok || end - p < nameLen) {
        warn("trace: %s: truncated header", path.c_str());
        return nullptr;
    }
    trace->recordedDesign = static_cast<DesignKind>(design);
    if (!isRegisteredKind(trace->recordedDesign)) {
        warn("trace: %s: unknown design id %u in header", path.c_str(),
             design);
        return nullptr;
    }
    trace->workloadName.assign(reinterpret_cast<const char *>(p),
                               nameLen);
    p += nameLen;
    if (!getU32(p, end, cfgLen) || end - p < cfgLen) {
        warn("trace: %s: truncated config", path.c_str());
        return nullptr;
    }
    std::vector<std::uint8_t> blob(p, p + cfgLen);
    p += cfgLen;
    if (!deserializeConfig(blob, trace->cfg)) {
        warn("trace: %s: malformed config blob", path.c_str());
        return nullptr;
    }
    if (fnv1a(blob.data(), blob.size()) != trace->configFingerprint) {
        warn("trace: %s: config fingerprint mismatch", path.c_str());
        return nullptr;
    }
    ok = getU64(p, end, trace->eventCount) && getU64(p, end, recordsLen);
    if (!ok || static_cast<std::uint64_t>(end - p) != recordsLen) {
        warn("trace: %s: truncated records", path.c_str());
        return nullptr;
    }
    trace->records.assign(p, end);
    std::string err;
    if (!validateRecords(*trace, err)) {
        warn("trace: %s: corrupt record stream: %s", path.c_str(),
             err.c_str());
        return nullptr;
    }
    return trace;
}

/*
 * TraceWriter.
 */

TraceWriter::TraceWriter(const SimConfig &cfg, DesignKind design,
                         std::string workloadName)
    : data_(std::make_shared<TraceData>())
{
    data_->recordedDesign = design;
    data_->workloadName = std::move(workloadName);
    data_->cfg = cfg;
}

Addr &
TraceWriter::cursorOf(int tid)
{
    auto idx = static_cast<std::size_t>(tid);
    if (idx >= lastVaddr_.size())
        lastVaddr_.resize(idx + 1, 0);
    return lastVaddr_[idx];
}

void
TraceWriter::putHead(Op op, int tid)
{
    panic_if(tid < 0, "trace: negative tid %d", tid);
    if (tid > maxTid_)
        maxTid_ = tid;
    std::uint8_t low = tid < kTidEscape ? static_cast<std::uint8_t>(tid)
                                        : kTidEscape;
    data_->records.push_back(
        static_cast<std::uint8_t>(static_cast<unsigned>(op) << 4 | low));
    if (low == kTidEscape)
        putVarint(data_->records, static_cast<std::uint64_t>(tid));
    data_->eventCount++;
}

void
TraceWriter::putAddr(int tid, Addr vaddr, std::size_t len)
{
    Addr &last = cursorOf(tid);
    putVarint(data_->records,
              zigzag(static_cast<std::int64_t>(vaddr) -
                     static_cast<std::int64_t>(last)));
    putVarint(data_->records, len);
    last = vaddr + len;
}

void
TraceWriter::onRead(int tid, Addr vaddr, std::size_t len)
{
    putHead(Op::Read, tid);
    putAddr(tid, vaddr, len);
}

void
TraceWriter::onWrite(int tid, Addr vaddr, const void *buf,
                     std::size_t len)
{
    putHead(Op::Write, tid);
    putAddr(tid, vaddr, len);
    const auto *b = static_cast<const std::uint8_t *>(buf);
    data_->records.insert(data_->records.end(), b, b + len);
}

void
TraceWriter::onCompute(int tid, Cycles cycles)
{
    putHead(Op::Compute, tid);
    putVarint(data_->records, cycles);
}

void
TraceWriter::onComputeChecksum(int tid, std::size_t bytes)
{
    putHead(Op::ComputeChecksum, tid);
    putVarint(data_->records, bytes);
}

void
TraceWriter::onDropCaches()
{
    putHead(Op::DropCaches, 0);
}

void
TraceWriter::onCommit(int tid, const std::vector<DirtyRange> &ranges,
                      bool runScheme, bool countsTxCommit)
{
    putHead(Op::Commit, tid);
    std::uint8_t flags = 0;
    if (runScheme)
        flags |= kCommitRunScheme;
    if (countsTxCommit)
        flags |= kCommitCountsTx;
    data_->records.push_back(flags);
    if (!runScheme) {
        putVarint(data_->records, 0);
        return;
    }
    putVarint(data_->records, ranges.size());
    for (const DirtyRange &r : ranges) {
        bool hasObj = r.objBase != 0 || r.objLen != 0;
        bool ownLine = hasObj && r.objBase == lineBase(r.vaddr) &&
            r.objLen == kLineBytes;
        bool hasCsum = r.csumVaddr != 0;
        std::uint8_t rf = 0;
        if (r.appData)
            rf |= kRangeAppData;
        if (hasObj)
            rf |= kRangeHasObj;
        if (hasCsum)
            rf |= kRangeHasCsum;
        if (ownLine)
            rf |= kRangeObjIsOwnLine;
        data_->records.push_back(rf);
        putAddr(tid, r.vaddr, r.len);
        if (hasObj && !ownLine) {
            putVarint(data_->records,
                      zigzag(static_cast<std::int64_t>(r.objBase) -
                             static_cast<std::int64_t>(r.vaddr)));
            putVarint(data_->records, r.objLen);
        }
        if (hasCsum) {
            putVarint(data_->records,
                      zigzag(static_cast<std::int64_t>(r.csumVaddr) -
                             static_cast<std::int64_t>(r.vaddr)));
        }
    }
}

void
TraceWriter::onFsCreate(const std::string &name, std::size_t bytes,
                        int fd)
{
    putHead(Op::FsCreate, 0);
    putVarint(data_->records, name.size());
    data_->records.insert(data_->records.end(), name.begin(), name.end());
    putVarint(data_->records, bytes);
    putVarint(data_->records, static_cast<std::uint64_t>(fd));
}

void
TraceWriter::onFsDaxMap(int fd)
{
    putHead(Op::FsDaxMap, 0);
    putVarint(data_->records, static_cast<std::uint64_t>(fd));
}

void
TraceWriter::onFsDaxUnmap(int fd)
{
    putHead(Op::FsDaxUnmap, 0);
    putVarint(data_->records, static_cast<std::uint64_t>(fd));
}

void
TraceWriter::onFsRemove(int fd)
{
    putHead(Op::FsRemove, 0);
    putVarint(data_->records, static_cast<std::uint64_t>(fd));
}

void
TraceWriter::onFsPwrite(int tid, int fd, std::size_t offset,
                        const void *buf, std::size_t len)
{
    putHead(Op::FsPwrite, tid);
    putVarint(data_->records, static_cast<std::uint64_t>(fd));
    putVarint(data_->records, offset);
    putVarint(data_->records, len);
    const auto *b = static_cast<const std::uint8_t *>(buf);
    data_->records.insert(data_->records.end(), b, b + len);
}

void
TraceWriter::onFsPread(int tid, int fd, std::size_t offset,
                       std::size_t len)
{
    putHead(Op::FsPread, tid);
    putVarint(data_->records, static_cast<std::uint64_t>(fd));
    putVarint(data_->records, offset);
    putVarint(data_->records, len);
}

void
TraceWriter::onMarker(std::uint64_t subtype)
{
    putHead(Op::Marker, 0);
    putVarint(data_->records, subtype);
}

std::shared_ptr<TraceData>
TraceWriter::finish()
{
    std::vector<std::uint8_t> blob = serializeConfig(data_->cfg);
    data_->configFingerprint = fnv1a(blob.data(), blob.size());
    data_->threads = static_cast<std::uint32_t>(maxTid_ + 1);
    return std::move(data_);
}

/*
 * TraceCursor.
 */

namespace {

/** Decode one delta-chained (vaddr, len) pair against the per-tid
 *  cursor (mirrors TraceWriter::putAddr). */
void
decodeAddr(const std::uint8_t *&p, const std::uint8_t *end,
           std::vector<Addr> &lastVaddr, int tid, Addr &vaddr,
           std::size_t &len)
{
    auto idx = static_cast<std::size_t>(tid);
    if (idx >= lastVaddr.size())
        lastVaddr.resize(idx + 1, 0);
    std::int64_t delta = unzigzag(getVarint(p, end));
    vaddr = static_cast<Addr>(
        static_cast<std::int64_t>(lastVaddr[idx]) + delta);
    len = getVarint(p, end);
    lastVaddr[idx] = vaddr + len;
}

}  // namespace

TraceCursor::TraceCursor(const TraceData &trace)
    : p_(trace.records.data()),
      end_(trace.records.data() + trace.records.size())
{}

bool
TraceCursor::next(TraceEvent &e)
{
    if (p_ >= end_)
        return false;
    std::uint8_t head = *p_++;
    e.op = static_cast<Op>(head >> 4);
    std::uint8_t low = head & 0xF;
    e.tid = low == kTidEscape
        ? static_cast<int>(getVarint(p_, end_))
        : low;
    e.payload = nullptr;
    e.ranges.clear();

    switch (e.op) {
      case Op::Read:
        decodeAddr(p_, end_, lastVaddr_, e.tid, e.vaddr, e.len);
        break;
      case Op::Write:
        decodeAddr(p_, end_, lastVaddr_, e.tid, e.vaddr, e.len);
        panic_if(static_cast<std::size_t>(end_ - p_) < e.len,
                 "trace: truncated write payload");
        e.payload = p_;
        p_ += e.len;
        break;
      case Op::Compute:
        e.cycles = getVarint(p_, end_);
        break;
      case Op::ComputeChecksum:
        e.bytes = getVarint(p_, end_);
        break;
      case Op::DropCaches:
        break;
      case Op::Commit: {
        panic_if(p_ >= end_, "trace: truncated commit");
        std::uint8_t flags = *p_++;
        e.runScheme = (flags & kCommitRunScheme) != 0;
        e.countsTxCommit = (flags & kCommitCountsTx) != 0;
        std::uint64_t n = getVarint(p_, end_);
        for (std::uint64_t i = 0; i < n; i++) {
            panic_if(p_ >= end_, "trace: truncated commit range");
            std::uint8_t rf = *p_++;
            DirtyRange r;
            r.appData = (rf & kRangeAppData) != 0;
            decodeAddr(p_, end_, lastVaddr_, e.tid, r.vaddr, r.len);
            if ((rf & kRangeHasObj) != 0) {
                if ((rf & kRangeObjIsOwnLine) != 0) {
                    r.objBase = lineBase(r.vaddr);
                    r.objLen = kLineBytes;
                } else {
                    r.objBase = static_cast<Addr>(
                        static_cast<std::int64_t>(r.vaddr) +
                        unzigzag(getVarint(p_, end_)));
                    r.objLen = getVarint(p_, end_);
                }
            }
            if ((rf & kRangeHasCsum) != 0) {
                r.csumVaddr = static_cast<Addr>(
                    static_cast<std::int64_t>(r.vaddr) +
                    unzigzag(getVarint(p_, end_)));
            }
            e.ranges.push_back(r);
        }
        break;
      }
      case Op::FsCreate: {
        std::uint64_t nameLen = getVarint(p_, end_);
        panic_if(static_cast<std::uint64_t>(end_ - p_) < nameLen,
                 "trace: truncated file name");
        e.name.assign(reinterpret_cast<const char *>(p_), nameLen);
        p_ += nameLen;
        e.bytes = getVarint(p_, end_);
        e.fd = static_cast<int>(getVarint(p_, end_));
        break;
      }
      case Op::FsDaxMap:
      case Op::FsDaxUnmap:
      case Op::FsRemove:
        e.fd = static_cast<int>(getVarint(p_, end_));
        break;
      case Op::FsPwrite:
        e.fd = static_cast<int>(getVarint(p_, end_));
        e.offset = getVarint(p_, end_);
        e.len = getVarint(p_, end_);
        panic_if(static_cast<std::size_t>(end_ - p_) < e.len,
                 "trace: truncated pwrite payload");
        e.payload = p_;
        p_ += e.len;
        break;
      case Op::FsPread:
        e.fd = static_cast<int>(getVarint(p_, end_));
        e.offset = getVarint(p_, end_);
        e.len = getVarint(p_, end_);
        break;
      case Op::Marker:
        e.subtype = getVarint(p_, end_);
        break;
      default:
        panic("trace: bad opcode %u", static_cast<unsigned>(e.op));
    }
    return true;
}

/*
 * TraceReplayWorkload.
 */

TraceReplayWorkload::TraceReplayWorkload(
    std::shared_ptr<const TraceData> trace, MemorySystem &mem, DaxFs &fs)
    : trace_(std::move(trace)),
      mem_(mem),
      fs_(fs),
      cursor_(*trace_),
      scheme_(mem.designObj().makeScheme(mem))
{}

void
TraceReplayWorkload::setup()
{
    while (cursor_.next(event_)) {
        if (!apply(event_))
            return;
    }
    panic("trace: stream ended before the reset-stats marker");
}

bool
TraceReplayWorkload::step()
{
    if (exhausted_)
        return false;
    // One slice replays a few thousand events: enough to amortize the
    // round-robin overhead, short enough for responsive interleaving
    // if other workloads are ever mixed in.
    for (int i = 0; i < 4096; i++) {
        if (!cursor_.next(event_)) {
            exhausted_ = true;
            return false;
        }
        apply(event_);
    }
    return true;
}

bool
TraceReplayWorkload::apply(const TraceEvent &e)
{
    switch (e.op) {
      case Op::Read:
        if (scratch_.size() < e.len)
            scratch_.resize(e.len);
        mem_.read(e.tid, e.vaddr, scratch_.data(), e.len);
        break;
      case Op::Write:
        mem_.write(e.tid, e.vaddr, e.payload, e.len);
        break;
      case Op::Compute:
        mem_.compute(e.tid, e.cycles);
        break;
      case Op::ComputeChecksum:
        mem_.computeChecksum(e.tid, e.bytes);
        break;
      case Op::DropCaches:
        mem_.dropCaches();
        break;
      case Op::Commit:
        if (e.countsTxCommit)
            mem_.stats().txCommits++;
        if (e.runScheme && scheme_ != nullptr)
            scheme_->onCommit(e.tid, e.ranges);
        break;
      case Op::FsCreate: {
        int fd = fs_.create(e.name, e.bytes);
        panic_if(fd != e.fd,
                 "trace replay: fd mismatch for %s (%d, recorded %d)",
                 e.name.c_str(), fd, e.fd);
        break;
      }
      case Op::FsDaxMap:
        fs_.daxMap(e.fd);
        break;
      case Op::FsDaxUnmap:
        fs_.daxUnmap(e.fd);
        break;
      case Op::FsRemove:
        fs_.remove(e.fd);
        break;
      case Op::FsPwrite:
        fs_.pwrite(e.tid, e.fd, e.offset, e.payload, e.len);
        break;
      case Op::FsPread:
        if (scratch_.size() < e.len)
            scratch_.resize(e.len);
        fs_.pread(e.tid, e.fd, e.offset, scratch_.data(), e.len);
        break;
      case Op::Marker:
        if (e.subtype == kMarkerResetStats)
            return false;
        break;
    }
    return true;
}

WorkloadFactory
makeReplayFactory(std::shared_ptr<const TraceData> trace)
{
    return [trace](MemorySystem &mem, DaxFs &fs) {
        WorkloadSet set;
        set.workloads.push_back(
            std::make_unique<TraceReplayWorkload>(trace, mem, fs));
        return set;
    };
}

/*
 * Record / replay entry points.
 */

RecordResult
recordExperiment(const SimConfig &cfg, DesignKind design,
                 const WorkloadFactory &make,
                 const std::string &workloadName)
{
    return recordExperiment(cfg, designOf(design), make, workloadName);
}

RecordResult
recordExperiment(const SimConfig &cfg, const Design &design,
                 const WorkloadFactory &make,
                 const std::string &workloadName)
{
    auto writer = std::make_shared<TraceWriter>(cfg, design.kind(),
                                                workloadName);
    RunHooks hooks;
    hooks.onMachine = [&writer](MemorySystem &mem, DaxFs &) {
        mem.setTraceSink(writer.get());
    };
    hooks.beforeReset = [&writer](MemorySystem &) {
        writer->onMarker(kMarkerResetStats);
    };
    // The final flushAll is not traced: replay's runner re-executes it
    // natively over bit-identical machine state.
    hooks.beforeFlush = [](MemorySystem &mem) {
        mem.setTraceSink(nullptr);
    };
    RecordResult out;
    out.result = runExperiment(cfg, design, make, hooks);
    out.trace = writer->finish();
    return out;
}

RunResult
replayExperiment(std::shared_ptr<const TraceData> trace,
                 DesignKind design)
{
    return replayExperiment(std::move(trace), designOf(design));
}

RunResult
replayExperiment(std::shared_ptr<const TraceData> trace,
                 const Design &design)
{
    SimConfig cfg = trace->cfg;
    return runExperiment(cfg, design, makeReplayFactory(std::move(trace)));
}

}  // namespace tvarak::trace
