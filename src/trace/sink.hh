/**
 * @file
 * TraceSink: the observer interface the access-trace recorder plugs
 * into the simulator with.
 *
 * MemorySystem (and the components that sit above it: DaxFs, PmemPool,
 * RawCoverage) hold a nullable TraceSink pointer and report events to
 * it. The hooks are zero-overhead when recording is off: a single
 * pointer compare per timed API call, no virtual dispatch.
 *
 * The suspend/resume depth counter lets a hook site execute internal
 * work without re-recording its nested timed accesses — e.g. DaxFs
 * records one high-level FsPwrite event and replays the call natively,
 * so the pwrite body's own reads/writes must not be recorded again.
 * SinkSuspend is the RAII guard for that pattern (null-safe, so call
 * sites need no recording-enabled branch).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tvarak {

struct DirtyRange;

namespace trace {

class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** True while events should be reported (not suspended). */
    bool active() const { return suspendDepth_ == 0; }
    void suspend() { suspendDepth_++; }
    void resume() { suspendDepth_--; }

    /** @name MemorySystem timed-API events */
    /**@{*/
    virtual void onRead(int tid, Addr vaddr, std::size_t len) = 0;
    /** Writes carry their payload: replay must reproduce checksum and
     *  parity contents bit-identically. */
    virtual void onWrite(int tid, Addr vaddr, const void *buf,
                         std::size_t len) = 0;
    virtual void onCompute(int tid, Cycles cycles) = 0;
    virtual void onComputeChecksum(int tid, std::size_t bytes) = 0;
    virtual void onDropCaches() = 0;
    /**@}*/

    /**
     * A redundancy-coverage point (PmemPool::txCommit/coverImmediate,
     * RawCoverage::onWrite). Recorded even when the recording design
     * has no scheme: replay under a TxB design re-executes the
     * scheme's timed work from these ranges.
     *
     * @param runScheme       the replay design's scheme (if any) must
     *                        run onCommit with @p ranges.
     * @param countsTxCommit  the site incremented Stats::txCommits.
     */
    virtual void onCommit(int tid, const std::vector<DirtyRange> &ranges,
                          bool runScheme, bool countsTxCommit) = 0;

    /** @name DaxFs operations (replayed natively; bodies suspended) */
    /**@{*/
    virtual void onFsCreate(const std::string &name, std::size_t bytes,
                            int fd) = 0;
    virtual void onFsDaxMap(int fd) = 0;
    virtual void onFsDaxUnmap(int fd) = 0;
    virtual void onFsRemove(int fd) = 0;
    virtual void onFsPwrite(int tid, int fd, std::size_t offset,
                            const void *buf, std::size_t len) = 0;
    virtual void onFsPread(int tid, int fd, std::size_t offset,
                           std::size_t len) = 0;
    /**@}*/

    /** Out-of-band barrier marker (see format.hh for subtypes). */
    virtual void onMarker(std::uint64_t subtype) = 0;

  private:
    int suspendDepth_ = 0;
};

/** Suspend @p sink (if any) for the current scope. */
class SinkSuspend
{
  public:
    explicit SinkSuspend(TraceSink *sink) : sink_(sink)
    {
        if (sink_ != nullptr)
            sink_->suspend();
    }
    ~SinkSuspend()
    {
        if (sink_ != nullptr)
            sink_->resume();
    }
    SinkSuspend(const SinkSuspend &) = delete;
    SinkSuspend &operator=(const SinkSuspend &) = delete;

  private:
    TraceSink *sink_;
};

}  // namespace trace
}  // namespace tvarak
