#include "pmemlib/pmem_pool.hh"

#include <bit>
#include <cstring>

#include "checksum/checksum.hh"
#include "sim/log.hh"
#include "trace/sink.hh"

namespace tvarak {

namespace {

constexpr std::uint64_t kMagic = 0x7076'6172'616b'0001ull;
constexpr std::uint64_t kTxIdle = 0;
constexpr std::uint64_t kTxStarted = 1;
constexpr std::uint64_t kTxCommitted = 2;
constexpr std::uint64_t kFreeBit = std::uint64_t{1} << 63;

/** Cycles we charge for volatile allocator bookkeeping per call. */
constexpr Cycles kAllocComputeCycles = 30;

}  // namespace

PmemPool::PmemPool(MemorySystem &mem, DaxFs &fs, const std::string &name,
                   std::size_t heapBytes, RedundancyScheme *scheme,
                   std::size_t lanes)
    : mem_(mem), fs_(fs), scheme_(scheme), lanes_(lanes)
{
    fatal_if(lanes_ == 0 || lanes_ > 32, "unreasonable lane count");
    std::size_t meta_pages = 1 + lanes_ + lanes_ * kLogPagesPerLane;
    // Round the heap so each lane arena is page aligned.
    arenaBytes_ =
        ((heapBytes / lanes_) + kPageBytes - 1) & ~(kPageBytes - 1);
    heapBytes_ = arenaBytes_ * lanes_;
    std::size_t file_bytes = meta_pages * kPageBytes + heapBytes_;

    fd_ = fs_.open(name);
    bool fresh = fd_ < 0;
    if (fresh)
        fd_ = fs_.create(name, file_bytes);
    base_ = fs_.isMapped(fd_) ? fs_.vbase(fd_) : fs_.daxMap(fd_);
    heapBase_ = base_ + meta_pages * kPageBytes;

    lanes_state_.resize(lanes_);
    for (auto &lane : lanes_state_)
        lane.freeLists.resize(48);
    lastObj_.assign(lanes_, ObjMemo{});

    if (fresh) {
        // Untimed one-time formatting (pool creation, not steady
        // state): header magic; lane pages are already zero.
        int tid = 0;
        mem_.write64(tid, base_, kMagic);
        mem_.write64(tid, base_ + 8, 0);  // root
        coverImmediate(tid, {makeRange(0, base_, 16)});
        mem_.stats().reset();
    } else {
        std::uint8_t magic[8];
        mem_.peek(base_, magic, 8);
        std::uint64_t m;
        std::memcpy(&m, magic, 8);
        fatal_if(m != kMagic, "pool %s: bad magic", name.c_str());
        recover();
    }
}

void
PmemPool::recover()
{
    // Offline reattach work (crash recovery / restart): untimed, as
    // it happens before the pool serves any request.
    auto peek64 = [this](Addr a) {
        std::uint64_t v;
        mem_.peek(a, &v, 8);
        return v;
    };

    // 1. Roll back interrupted transactions from the undo logs.
    for (std::size_t lane = 0; lane < lanes_; lane++) {
        std::uint64_t state = peek64(laneStateAddr(lane));
        if (state == kTxStarted) {
            recoveredFromCrash_ = true;
            auto log_len =
                static_cast<std::size_t>(peek64(laneLogOffAddr(lane)));
            // Collect entries, then apply old data newest-first.
            std::vector<std::pair<Addr, std::vector<std::uint8_t>>>
                entries;
            std::size_t off = 0;
            while (off < log_len) {
                Addr log = laneLogBase(lane) + off;
                Addr target = peek64(log);
                auto len = static_cast<std::size_t>(peek64(log + 8));
                std::vector<std::uint8_t> old(len);
                mem_.peek(log + 16, old.data(), len);
                entries.emplace_back(target, std::move(old));
                off += 16 + ((len + 15) & ~std::size_t{15});
            }
            for (auto it = entries.rbegin(); it != entries.rend();
                 ++it) {
                mem_.write(0, it->first, it->second.data(),
                           it->second.size());
            }
        }
        if (state != kTxIdle)
            mem_.write64(0, laneStateAddr(lane), kTxIdle);
    }

    // 2. Rebuild the volatile allocator index from the persistent
    //    headers (PMDK rebuilds its runtime state the same way).
    for (std::size_t lane = 0; lane < lanes_; lane++) {
        auto brk = static_cast<std::size_t>(peek64(laneBrkAddr(lane)));
        fatal_if(brk > arenaBytes_, "corrupt arena brk");
        lanes_state_[lane].brk = brk;
        std::size_t off = 0;
        while (off < brk) {
            Addr header = arenaBase(lane) + off;
            std::uint64_t word = peek64(header);
            bool free = (word & kFreeBit) != 0;
            auto bytes =
                static_cast<std::size_t>(word & ~kFreeBit);
            fatal_if(bytes == 0 || sizeClass(bytes) > 47,
                     "corrupt object header during recovery");
            std::size_t cls = sizeClass(bytes);
            if (free)
                lanes_state_[lane].freeLists[cls].push_back(header);
            else
                allocations_[header + kObjHeaderBytes] = bytes;
            off += std::size_t{1} << cls;
        }
    }
}

std::size_t
PmemPool::sizeClass(std::size_t bytes)
{
    std::size_t total = bytes + kObjHeaderBytes;
    if (total < kMinAlloc)
        total = kMinAlloc;
    return std::bit_width(total - 1);  // ceil log2
}

Addr
PmemPool::alloc(int tid, std::size_t bytes)
{
    fatal_if(bytes == 0, "zero-byte allocation");
    std::size_t lane_idx = laneOf(tid);
    Lane &lane = lanes_state_[lane_idx];
    std::size_t cls = sizeClass(bytes);
    std::size_t chunk = std::size_t{1} << cls;
    mem_.compute(tid, kAllocComputeCycles);

    Addr header;
    if (!lane.freeLists[cls].empty()) {
        header = lane.freeLists[cls].back();
        lane.freeLists[cls].pop_back();
    } else {
        fatal_if(lane.brk + chunk > arenaBytes_,
                 "pool arena %zu exhausted", lane_idx);
        header = arenaBase(lane_idx) + lane.brk;
        lane.brk += chunk;
        // Persist the bump pointer (allocator metadata write).
        mem_.write64(tid, laneBrkAddr(lane_idx), lane.brk);
    }
    // Object header: size word; checksum slot filled lazily by the
    // redundancy scheme (if any).
    mem_.write64(tid, header, static_cast<std::uint64_t>(bytes));
    Addr payload = header + kObjHeaderBytes;
    allocations_[payload] = bytes;
    if (inTx(tid)) {
        recordDirty(lane, header, kObjHeaderBytes);
        recordDirty(lane, laneBrkAddr(lane_idx), 8);
    } else {
        coverImmediate(tid,
                       {makeRange(lane_idx, header, kObjHeaderBytes),
                        makeRange(lane_idx, laneBrkAddr(lane_idx), 8)});
    }
    return payload;
}

void
PmemPool::free(int tid, Addr payload)
{
    auto it = allocations_.find(payload);
    panic_if(it == allocations_.end(), "free of unallocated %llx",
             static_cast<unsigned long long>(payload));
    std::size_t bytes = it->second;
    allocations_.erase(it);
    // The memoized owner intervals may be the object just freed (and
    // its range can be recycled at a different size): drop them all.
    for (ObjMemo &m : lastObj_)
        m.len = 0;
    std::size_t lane_idx = laneOf(tid);
    Lane &lane = lanes_state_[lane_idx];
    std::size_t cls = sizeClass(bytes);
    Addr header = payload - kObjHeaderBytes;
    mem_.compute(tid, kAllocComputeCycles);
    // Mark the header free (persistent), recycle volatile index.
    mem_.write64(tid, header,
                 kFreeBit | static_cast<std::uint64_t>(bytes));
    lane.freeLists[cls].push_back(header);
    if (inTx(tid))
        recordDirty(lane, header, 8);
    else
        coverImmediate(tid, {makeRange(lane_idx, header, 8)});
}

std::size_t
PmemPool::objectSize(Addr payload) const
{
    auto it = allocations_.find(payload);
    panic_if(it == allocations_.end(), "objectSize of unallocated addr");
    return it->second;
}

bool
PmemPool::inTx(int tid) const
{
    return lanes_state_[laneOf(tid)].active;
}

DirtyRange
PmemPool::makeRange(std::size_t laneIdx, Addr vaddr,
                    std::size_t len) const
{
    DirtyRange r;
    r.vaddr = vaddr;
    r.len = len;
    // Resolve the owning object, if the range is inside the heap.
    // Metadata ranges (lane state, log appends) sit in the meta pages
    // below heapBase_ and can never match an allocation: skip the
    // tree entirely for them — log appends are the single most common
    // caller. For heap ranges, consecutive dirty ranges overwhelmingly
    // land in the same object per lane, so try the lane's memoized
    // interval before walking the tree.
    if (vaddr >= heapBase_ && vaddr < heapBase_ + heapBytes_) {
        ObjMemo &memo = lastObj_[laneIdx];
        if (memo.len != 0 && vaddr >= memo.base - kObjHeaderBytes &&
            vaddr + len <= memo.base + memo.len) {
            r.objBase = memo.base;
            r.objLen = memo.len;
            r.csumVaddr = memo.base - kObjHeaderBytes + 8;
            return r;
        }
        auto it = allocations_.upper_bound(vaddr);
        if (it != allocations_.begin()) {
            --it;
            if (vaddr >= it->first - kObjHeaderBytes &&
                vaddr + len <= it->first + it->second) {
                r.objBase = it->first;
                r.objLen = it->second;
                r.csumVaddr = it->first - kObjHeaderBytes + 8;
                memo.base = it->first;
                memo.len = it->second;
            }
        }
    }
    if (r.csumVaddr == 0) {
        // Pool metadata (lane state, log, root, free headers):
        // covered by the lane's metadata checksum slot, and not
        // application data in the TxB-Page coverage model.
        r.csumVaddr = laneMetaCsumAddr(laneIdx);
        r.appData = false;
    }
    return r;
}

void
PmemPool::recordDirty(Lane &lane, Addr vaddr, std::size_t len)
{
    lane.dirty.push_back(makeRange(
        static_cast<std::size_t>(&lane - lanes_state_.data()), vaddr,
        len));
}

void
PmemPool::coverImmediate(int tid, std::vector<DirtyRange> ranges)
{
    if (ranges.empty())
        return;
    // Recorded as a commit event even when this design has no scheme
    // (Baseline): a replay under a TxB design re-executes the scheme's
    // work from the recorded ranges.
    trace::TraceSink *sink = mem_.traceSink();
    bool rec = sink != nullptr && sink->active();
    if (rec && schemeEnabled_)
        sink->onCommit(tid, ranges, true, false);
    if (RedundancyScheme *scheme = activeScheme()) {
        trace::SinkSuspend guard(rec ? sink : nullptr);
        scheme->onCommit(tid, ranges);
    }
}

void
PmemPool::txBegin(int tid)
{
    std::size_t lane_idx = laneOf(tid);
    Lane &lane = lanes_state_[lane_idx];
    panic_if(lane.active, "nested transactions are not supported");
    lane.active = true;
    lane.logOff = 0;
    lane.dirty.clear();
    mem_.write64(tid, laneStateAddr(lane_idx), kTxStarted);
    mem_.write64(tid, laneLogOffAddr(lane_idx), 0);
    recordDirty(lane, laneStateAddr(lane_idx), 16);
}

void
PmemPool::txAddRange(int tid, Addr vaddr, std::size_t len)
{
    std::size_t lane_idx = laneOf(tid);
    Lane &lane = lanes_state_[lane_idx];
    panic_if(!lane.active, "txAddRange outside a transaction");
    fatal_if(len == 0, "empty tx range");

    // Undo log entry: 16-byte header (addr, len) + old data.
    std::size_t entry = 16 + ((len + 15) & ~std::size_t{15});
    fatal_if(lane.logOff + entry >
                 kLogPagesPerLane * kPageBytes,
             "transaction too large for the undo log");
    Addr log = laneLogBase(lane_idx) + lane.logOff;
    std::vector<std::uint8_t> old(len);
    mem_.read(tid, vaddr, old.data(), len);
    mem_.write64(tid, log, vaddr);
    mem_.write64(tid, log + 8, static_cast<std::uint64_t>(len));
    mem_.write(tid, log + 16, old.data(), len);
    lane.logOff += entry;
    // Persist the log length: recovery must know how much to replay.
    mem_.write64(tid, laneLogOffAddr(lane_idx),
                 static_cast<std::uint64_t>(lane.logOff));

    recordDirty(lane, vaddr, len);
    // The log bytes themselves are dirty NVM data the redundancy
    // schemes must cover.
    recordDirty(lane, log, 16 + len);
}

void
PmemPool::txWrite(int tid, Addr vaddr, const void *buf, std::size_t len)
{
    txAddRange(tid, vaddr, len);
    mem_.write(tid, vaddr, buf, len);
}

void
PmemPool::txWriteNoUndo(int tid, Addr vaddr, const void *buf,
                        std::size_t len)
{
    std::size_t lane_idx = laneOf(tid);
    Lane &lane = lanes_state_[lane_idx];
    panic_if(!lane.active, "txWriteNoUndo outside a transaction");
    mem_.write(tid, vaddr, buf, len);
    recordDirty(lane, vaddr, len);
}

void
PmemPool::txCommit(int tid)
{
    std::size_t lane_idx = laneOf(tid);
    Lane &lane = lanes_state_[lane_idx];
    panic_if(!lane.active, "commit outside a transaction");
    mem_.write64(tid, laneStateAddr(lane_idx), kTxCommitted);
    mem_.stats().txCommits++;
    // Log invalidation / state reset precedes the redundancy pass so
    // the lane-state range recorded at txBegin covers the final word
    // (battery-backed caches make the ordering safe, Section III-B).
    mem_.write64(tid, laneStateAddr(lane_idx), kTxIdle);
    // Unconditional commit event (the txCommits count replays even for
    // designs without a scheme); dirty ranges ride along only when the
    // scheme pass below would run, so replay mirrors it exactly.
    trace::TraceSink *sink = mem_.traceSink();
    bool rec = sink != nullptr && sink->active();
    if (rec)
        sink->onCommit(tid, lane.dirty, schemeEnabled_, true);
    if (RedundancyScheme *scheme = activeScheme()) {
        trace::SinkSuspend guard(rec ? sink : nullptr);
        scheme->onCommit(tid, lane.dirty);
    }
    lane.active = false;
    lane.dirty.clear();
    lane.logOff = 0;
}

void
PmemPool::txAbort(int tid)
{
    std::size_t lane_idx = laneOf(tid);
    Lane &lane = lanes_state_[lane_idx];
    panic_if(!lane.active, "abort outside a transaction");
    // Walk the undo log backwards restoring old data.
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> entries;
    std::size_t off = 0;
    while (off < lane.logOff) {
        Addr log = laneLogBase(lane_idx) + off;
        Addr target = mem_.read64(tid, log);
        auto len =
            static_cast<std::size_t>(mem_.read64(tid, log + 8));
        std::vector<std::uint8_t> old(len);
        mem_.read(tid, log + 16, old.data(), len);
        entries.emplace_back(target, std::move(old));
        off += 16 + ((len + 15) & ~std::size_t{15});
    }
    for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        mem_.write(tid, it->first, it->second.data(), it->second.size());
    mem_.write64(tid, laneStateAddr(lane_idx), kTxIdle);
    lane.active = false;
    lane.dirty.clear();
    lane.logOff = 0;
}

Addr
PmemPool::getRoot(int tid)
{
    return mem_.read64(tid, base_ + 8);
}

void
PmemPool::setRoot(int tid, Addr payload)
{
    if (inTx(tid)) {
        txWrite(tid, base_ + 8, &payload, 8);
    } else {
        mem_.write64(tid, base_ + 8, payload);
        coverImmediate(tid, {makeRange(laneOf(tid), base_ + 8, 8)});
    }
}

std::size_t
PmemPool::verifyObjects() const
{
    std::size_t bad = 0;
    std::vector<std::uint8_t> buf;
    for (const auto &[payload, size] : allocations_) {
        buf.resize(size);
        mem_.peek(payload, buf.data(), size);
        std::uint8_t cs[8];
        mem_.peek(payload - kObjHeaderBytes + 8, cs, 8);
        std::uint64_t expected;
        std::memcpy(&expected, cs, 8);
        std::uint64_t actual = kObjectCsumTag | crc32c(buf.data(), size);
        if (actual != expected)
            bad++;
    }
    return bad;
}

}  // namespace tvarak
