/**
 * @file
 * PmemPool: a PMDK-libpmemobj-like transactional persistent heap.
 *
 * This is the substrate the paper's applications run on: Redis and the
 * tree key-value stores use libpmemobj transactions; the TxB software
 * redundancy schemes hook the commit path. The pool lives in one
 * DAX-mapped DaxFs file laid out as:
 *
 *   page 0                    pool header (magic, root offset)
 *   pages 1 .. L              one transaction lane page per lane:
 *                             tx state word, metadata/log checksum
 *                             slots, the lane's heap bump pointer
 *   next L*kLogPagesPerLane   per-lane undo-log regions
 *   rest                      heap, statically split into L arenas
 *
 * Transactions are undo-logged: txAddRange copies the old bytes into
 * the lane's log (timed writes), txBegin/txCommit write the lane state
 * word (the "persistent metadata writes" that make even read-only
 * Redis transactions cost something, Section IV-B). At commit the
 * registered RedundancyScheme (if any) maintains checksums/parity in
 * software; under Baseline/TVARAK the scheme is null.
 *
 * Objects carry a 16-byte header (size + object checksum slot); the
 * checksum slot is what TxB-Object-Csums fills, and is the scheme's
 * "higher space overhead" (Table I).
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "redundancy/scheme.hh"
#include "sim/types.hh"

namespace tvarak {

class PmemPool
{
  public:
    static constexpr std::size_t kObjHeaderBytes = 16;
    static constexpr std::size_t kLogPagesPerLane = 8;
    static constexpr std::size_t kMinAlloc = 32;

    /**
     * Create (or reattach to) the pool file @p name.
     *
     * @param heapBytes  requested heap capacity (file is larger).
     * @param scheme     software redundancy hook, may be null.
     * @param lanes      transaction lanes (>= number of client threads).
     */
    PmemPool(MemorySystem &mem, DaxFs &fs, const std::string &name,
             std::size_t heapBytes, RedundancyScheme *scheme,
             std::size_t lanes = 12);

    /** @name Allocation (timed) */
    /**@{*/
    /** Allocate @p bytes; returns the payload virtual address. */
    Addr alloc(int tid, std::size_t bytes);
    void free(int tid, Addr payload);
    /** Payload size of an allocated object. */
    std::size_t objectSize(Addr payload) const;
    /**@}*/

    /** @name Transactions (timed) */
    /**@{*/
    void txBegin(int tid);
    /** Undo-log @p len bytes at @p vaddr and mark them dirty. */
    void txAddRange(int tid, Addr vaddr, std::size_t len);
    /** Convenience: txAddRange + write. */
    void txWrite(int tid, Addr vaddr, const void *buf, std::size_t len);
    /**
     * Write without undo logging (PMDK's NO_SNAPSHOT ranges): for
     * freshly allocated memory whose pre-transaction content is
     * garbage. Still recorded as dirty for redundancy coverage.
     */
    void txWriteNoUndo(int tid, Addr vaddr, const void *buf,
                       std::size_t len);
    void txCommit(int tid);
    /** Roll back the current transaction from the undo log. */
    void txAbort(int tid);
    bool inTx(int tid) const;
    /**@}*/

    /** @name Root object */
    /**@{*/
    Addr getRoot(int tid);
    void setRoot(int tid, Addr payload);
    /**@}*/

    /** Verify every live object against its header checksum (untimed;
     *  meaningful under TxB-Object-Csums). @return mismatches. */
    std::size_t verifyObjects() const;

    /** True iff the reattach found (and rolled back) an interrupted
     *  transaction — i.e. the pool crashed mid-transaction. */
    bool recoveredFromCrash() const { return recoveredFromCrash_; }

    /**
     * Toggle the redundancy scheme hook. Drivers disable it during
     * unmeasured load phases (equivalent to restoring a pre-built
     * snapshot) and re-enable it before the measured steady state.
     */
    void setSchemeEnabled(bool enabled) { schemeEnabled_ = enabled; }

    Addr base() const { return base_; }
    std::size_t heapBytes() const { return heapBytes_; }
    int fd() const { return fd_; }
    std::size_t lanes() const { return lanes_; }

    /** Live allocated objects (payload addr -> size); for tests. */
    std::size_t liveObjects() const { return allocations_.size(); }

  private:
    struct Lane {
        bool active = false;
        std::size_t logOff = 0;       //!< bytes used in the log region
        std::uint64_t brk = 0;        //!< arena bump offset (mirrored)
        std::vector<DirtyRange> dirty;
        std::vector<std::vector<Addr>> freeLists;  //!< per size class
    };

    std::size_t laneOf(int tid) const
    {
        return static_cast<std::size_t>(tid) % lanes_;
    }
    Addr lanePage(std::size_t lane) const
    {
        return base_ + (1 + lane) * kPageBytes;
    }
    Addr laneStateAddr(std::size_t lane) const { return lanePage(lane); }
    Addr laneMetaCsumAddr(std::size_t lane) const
    {
        return lanePage(lane) + 8;
    }
    Addr laneLogOffAddr(std::size_t lane) const
    {
        return lanePage(lane) + 24;
    }
    Addr laneBrkAddr(std::size_t lane) const
    {
        return lanePage(lane) + kLineBytes;
    }
    Addr laneLogBase(std::size_t lane) const
    {
        return base_ + (1 + lanes_) * kPageBytes +
            lane * kLogPagesPerLane * kPageBytes;
    }
    Addr arenaBase(std::size_t lane) const
    {
        return heapBase_ + lane * arenaBytes_;
    }

    static std::size_t sizeClass(std::size_t bytes);

    /** Build a DirtyRange, resolving the owning object if any. */
    DirtyRange makeRange(std::size_t laneIdx, Addr vaddr,
                         std::size_t len) const;
    /** Record a dirty range within the current transaction. */
    void recordDirty(Lane &lane, Addr vaddr, std::size_t len);
    /**
     * Cover writes issued outside a transaction (allocator metadata,
     * root updates, pool formatting): the library maintains their
     * redundancy immediately, as Pangolin does for its own metadata.
     */
    void coverImmediate(int tid, std::vector<DirtyRange> ranges);

    /** Reattach path: roll back interrupted transactions from the
     *  persistent undo logs and rebuild the volatile allocator index
     *  by scanning the arena headers. */
    void recover();

    RedundancyScheme *activeScheme() const
    {
        return schemeEnabled_ ? scheme_ : nullptr;
    }

    MemorySystem &mem_;
    DaxFs &fs_;
    RedundancyScheme *scheme_;
    bool schemeEnabled_ = true;
    bool recoveredFromCrash_ = false;
    int fd_;
    Addr base_;
    std::size_t lanes_;
    Addr heapBase_;
    std::size_t heapBytes_;
    std::size_t arenaBytes_;
    std::vector<Lane> lanes_state_;
    /** payload vaddr -> payload size, for owner lookup. */
    std::map<Addr, std::size_t> allocations_;
    /** Last object resolved by makeRange, memoized per lane: dirty
     *  ranges cluster within one object per thread, but the threads
     *  interleave, so a single shared slot would thrash. len 0 =
     *  empty; invalidated by alloc/free (the map changed). */
    struct ObjMemo {
        Addr base = 0;
        std::size_t len = 0;
    };
    mutable std::vector<ObjMemo> lastObj_;
};

}  // namespace tvarak

